package graph

import (
	"errors"
	"fmt"
)

// ErrDisconnected is returned by whole-graph computations (diameter,
// distributed algorithms) and connected-sample generators that require a
// connected graph.
var ErrDisconnected = errors.New("graph: graph is disconnected")

// errDisconnected is the historical internal name; kept so existing wrap
// sites read unchanged.
var errDisconnected = ErrDisconnected

// Disconnected reports whether err indicates a disconnected input.
// Equivalent to errors.Is(err, ErrDisconnected).
func Disconnected(err error) bool { return errors.Is(err, ErrDisconnected) }

// ErrRetryExhausted is the sentinel matched (via errors.Is) by every
// generator retry-budget failure: ConnectedER, ConnectedRandomRegular and
// ConnectedRGG resample until connected, and RandomRegular's configuration
// model rejects pairings with loops or parallel edges; when the attempt
// budget runs out they return a *RetryError wrapping this sentinel.
var ErrRetryExhausted = errors.New("graph: generator retry budget exhausted")

// errNoSimplePairing is the per-attempt failure of the configuration
// model: the sampled pairing contained a loop or a parallel edge.
var errNoSimplePairing = errors.New("graph: pairing produced a loop or parallel edge")

// RetryError reports that a randomized generator exhausted its attempt
// budget. It matches ErrRetryExhausted and its Last cause (typically
// ErrDisconnected) under errors.Is, and carries the attempt count for
// callers that want to retune the budget.
type RetryError struct {
	// Op names the generator, e.g. "ER" or "random regular".
	Op string
	// Tries is the number of attempts made.
	Tries int
	// Last is the failure of the final attempt.
	Last error
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("graph: %s: no admissible sample in %d tries: %v", e.Op, e.Tries, e.Last)
}

// Unwrap exposes both the sentinel and the last per-attempt failure, so
// errors.Is(err, ErrRetryExhausted) and errors.Is(err, ErrDisconnected)
// both hold for a connectivity-retry exhaustion.
func (e *RetryError) Unwrap() []error { return []error{ErrRetryExhausted, e.Last} }

func errOutOfRange(v NodeID, n int) error {
	return fmt.Errorf("graph: node %d out of range [0,%d)", v, n)
}
