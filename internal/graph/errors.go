package graph

import (
	"errors"
	"fmt"
)

// ErrDisconnected is returned by whole-graph computations (diameter,
// distributed algorithms) that require a connected graph.
var errDisconnected = errors.New("graph: graph is disconnected")

// Disconnected reports whether err indicates a disconnected input.
func Disconnected(err error) bool { return errors.Is(err, errDisconnected) }

func errOutOfRange(v NodeID, n int) error {
	return fmt.Errorf("graph: node %d out of range [0,%d)", v, n)
}
