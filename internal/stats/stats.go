// Package stats provides the statistical machinery behind the experiment
// harness: chi-square goodness-of-fit tests (uniformity of spanning trees,
// endpoint distributions), log-log slope fits (growth exponents of round
// counts, the "shape" the reproduction must match), and summary helpers.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs (0 if len < 2).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Max returns the maximum of xs (−Inf for empty input).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// ChiSquare computes the chi-square statistic of observed counts against
// expected probabilities, with len(observed)−1 degrees of freedom.
// Expected probabilities must be positive and sum to ~1.
func ChiSquare(observed []int, expected []float64) (stat float64, df int, err error) {
	if len(observed) != len(expected) || len(observed) < 2 {
		return 0, 0, fmt.Errorf("stats: need matching lengths >= 2, got %d, %d", len(observed), len(expected))
	}
	total := 0
	for _, o := range observed {
		if o < 0 {
			return 0, 0, fmt.Errorf("stats: negative count %d", o)
		}
		total += o
	}
	if total == 0 {
		return 0, 0, fmt.Errorf("stats: no observations")
	}
	psum := 0.0
	for i, p := range expected {
		if p <= 0 {
			return 0, 0, fmt.Errorf("stats: expected probability %v at index %d not positive", p, i)
		}
		psum += p
	}
	if math.Abs(psum-1) > 1e-6 {
		return 0, 0, fmt.Errorf("stats: expected probabilities sum to %v, want 1", psum)
	}
	for i, o := range observed {
		e := expected[i] * float64(total)
		d := float64(o) - e
		stat += d * d / e
	}
	return stat, len(observed) - 1, nil
}

// ChiSquarePValue returns P(X ≥ stat) for X ~ chi-square with df degrees of
// freedom, via the regularized upper incomplete gamma function.
func ChiSquarePValue(stat float64, df int) (float64, error) {
	if df < 1 {
		return 0, fmt.Errorf("stats: df must be >= 1, got %d", df)
	}
	if stat < 0 {
		return 0, fmt.Errorf("stats: negative statistic %v", stat)
	}
	return gammaQ(float64(df)/2, stat/2)
}

// UniformityPValue is a convenience wrapper: chi-square p-value of observed
// counts against the uniform distribution over len(observed) cells.
func UniformityPValue(observed []int) (float64, error) {
	exp := make([]float64, len(observed))
	for i := range exp {
		exp[i] = 1 / float64(len(exp))
	}
	stat, df, err := ChiSquare(observed, exp)
	if err != nil {
		return 0, err
	}
	return ChiSquarePValue(stat, df)
}

// LogLogSlope fits a least-squares line to (log x, log y) and returns its
// slope — the empirical growth exponent of y as a function of x. All inputs
// must be positive.
func LogLogSlope(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, fmt.Errorf("stats: need matching lengths >= 2, got %d, %d", len(xs), len(ys))
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, fmt.Errorf("stats: log-log fit needs positive data, got (%v,%v)", xs[i], ys[i])
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	return slope(lx, ly)
}

func slope(xs, ys []float64) (float64, error) {
	mx, my := Mean(xs), Mean(ys)
	num, den := 0.0, 0.0
	for i := range xs {
		num += (xs[i] - mx) * (ys[i] - my)
		den += (xs[i] - mx) * (xs[i] - mx)
	}
	if den == 0 {
		return 0, fmt.Errorf("stats: degenerate fit (all x equal)")
	}
	return num / den, nil
}

// gammaQ computes the regularized upper incomplete gamma function Q(a, x)
// with the classic series/continued-fraction split (Numerical Recipes
// gammp/gammq).
func gammaQ(a, x float64) (float64, error) {
	if x < 0 || a <= 0 {
		return 0, fmt.Errorf("stats: invalid gammaQ arguments a=%v x=%v", a, x)
	}
	if x == 0 {
		return 1, nil
	}
	if x < a+1 {
		p, err := gammaSeriesP(a, x)
		if err != nil {
			return 0, err
		}
		return 1 - p, nil
	}
	return gammaContinuedQ(a, x)
}

// gammaSeriesP evaluates P(a,x) by its power series (converges for x < a+1).
func gammaSeriesP(a, x float64) (float64, error) {
	const (
		maxIter = 500
		eps     = 1e-14
	)
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return 0, fmt.Errorf("stats: gamma series did not converge (a=%v x=%v)", a, x)
}

// gammaContinuedQ evaluates Q(a,x) by Lentz's continued fraction
// (converges for x >= a+1).
func gammaContinuedQ(a, x float64) (float64, error) {
	const (
		maxIter = 500
		eps     = 1e-14
		tiny    = 1e-300
	)
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return 0, fmt.Errorf("stats: gamma continued fraction did not converge (a=%v x=%v)", a, x)
}
