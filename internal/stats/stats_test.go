package stats

import (
	"math"
	"testing"

	"distwalk/internal/rng"
)

func TestMeanStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean = %v, want 5", m)
	}
	if s := Stddev(xs); math.Abs(s-2.138) > 0.01 {
		t.Fatalf("stddev = %v, want ~2.138", s)
	}
	if Mean(nil) != 0 || Stddev([]float64{1}) != 0 {
		t.Fatal("degenerate inputs mishandled")
	}
}

func TestMax(t *testing.T) {
	if m := Max([]float64{1, 9, 3}); m != 9 {
		t.Fatalf("max = %v", m)
	}
	if !math.IsInf(Max(nil), -1) {
		t.Fatal("empty max should be -Inf")
	}
}

func TestChiSquareExact(t *testing.T) {
	// Observed [10, 20] vs fair coin with 30 draws: expected 15 each,
	// stat = 25/15 * 2 = 10/3.
	stat, df, err := ChiSquare([]int{10, 20}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if df != 1 || math.Abs(stat-10.0/3) > 1e-12 {
		t.Fatalf("stat=%v df=%d", stat, df)
	}
}

func TestChiSquareValidation(t *testing.T) {
	cases := []struct {
		name string
		obs  []int
		exp  []float64
	}{
		{"length mismatch", []int{1, 2}, []float64{1}},
		{"too short", []int{1}, []float64{1}},
		{"negative count", []int{-1, 2}, []float64{0.5, 0.5}},
		{"zero total", []int{0, 0}, []float64{0.5, 0.5}},
		{"bad probability", []int{1, 2}, []float64{0, 1}},
		{"probs do not sum", []int{1, 2}, []float64{0.4, 0.4}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := ChiSquare(tt.obs, tt.exp); err == nil {
				t.Fatal("invalid input accepted")
			}
		})
	}
}

func TestChiSquarePValueKnownValues(t *testing.T) {
	// Known quantiles: P(X ≥ 3.841 | df=1) = 0.05, P(X ≥ 9.210 | df=2) = 0.01.
	cases := []struct {
		stat float64
		df   int
		want float64
	}{
		{3.841, 1, 0.05},
		{9.210, 2, 0.01},
		{0, 3, 1.0},
		{18.467, 10, 0.0478}, // ~0.048
	}
	for _, tt := range cases {
		p, err := ChiSquarePValue(tt.stat, tt.df)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p-tt.want) > 0.003 {
			t.Fatalf("p(%v, df=%d) = %v, want %v", tt.stat, tt.df, p, tt.want)
		}
	}
}

func TestChiSquarePValueValidation(t *testing.T) {
	if _, err := ChiSquarePValue(1, 0); err == nil {
		t.Fatal("df=0 accepted")
	}
	if _, err := ChiSquarePValue(-1, 1); err == nil {
		t.Fatal("negative stat accepted")
	}
}

func TestUniformityPValueOnFairSampler(t *testing.T) {
	r := rng.New(5)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[r.Intn(10)]++
	}
	p, err := UniformityPValue(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.001 {
		t.Fatalf("fair sampler rejected: p = %v", p)
	}
}

func TestUniformityPValueOnBiasedSampler(t *testing.T) {
	r := rng.New(6)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(11) // bucket 0 gets double probability
		if v == 10 {
			v = 0
		}
		counts[v]++
	}
	p, err := UniformityPValue(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Fatalf("biased sampler not rejected: p = %v", p)
	}
}

func TestLogLogSlopeRecoversExponents(t *testing.T) {
	for _, exp := range []float64{0.5, 1.0, 2.0} {
		var xs, ys []float64
		for _, x := range []float64{10, 100, 1000, 10000} {
			xs = append(xs, x)
			ys = append(ys, 3*math.Pow(x, exp))
		}
		got, err := LogLogSlope(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-exp) > 1e-9 {
			t.Fatalf("slope = %v, want %v", got, exp)
		}
	}
}

func TestLogLogSlopeValidation(t *testing.T) {
	if _, err := LogLogSlope([]float64{1}, []float64{1}); err == nil {
		t.Fatal("short input accepted")
	}
	if _, err := LogLogSlope([]float64{1, -2}, []float64{1, 2}); err == nil {
		t.Fatal("negative input accepted")
	}
	if _, err := LogLogSlope([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Fatal("degenerate x accepted")
	}
}
