// Package rng provides a deterministic, splittable pseudo-random number
// generator used by every stochastic component of the simulator.
//
// Reproducibility is a hard requirement for the experiment harness: a whole
// distributed execution (graph generation, short-walk lengths, stitching
// choices, ...) must be replayable from a single master seed. The standard
// library's math/rand is seedable but offers no principled way to derive
// many independent streams, so we implement xoshiro256** seeded through
// splitmix64, the construction recommended by its authors for exactly this
// purpose. Per-node streams are derived with Stream, which hashes the stream
// index into the seed material so that streams are statistically independent
// regardless of how many are created.
package rng

import "math/bits"

// RNG is a xoshiro256** generator. It is not safe for concurrent use; derive
// one stream per goroutine (or per simulated node) with Stream or Split.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64. Any seed value,
// including zero, yields a well-mixed internal state.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	return r
}

// Stream derives an independent generator identified by id from r's original
// seed material. Calling Stream with the same id twice yields generators
// that produce identical sequences; distinct ids yield independent
// sequences. Stream does not advance r.
func (r *RNG) Stream(id uint64) *RNG {
	d := &RNG{}
	// Mix the stream id into each state word with distinct odd constants so
	// that streams differ in every word even for adjacent ids.
	sm := r.s[0] ^ (id * 0x9e3779b97f4a7c15)
	for i := range d.s {
		sm, d.s[i] = splitmix64(sm ^ r.s[i])
	}
	return d
}

// Split returns a new independent generator derived from r's current state,
// advancing r. Useful when a single sequential seed must fork.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xd1342543de82ef95)
}

// Uint64 returns the next value of the stream.
func (r *RNG) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9

	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)

	return result
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0, mirroring
// math/rand; callers in this module always pass positive bounds.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n) using Lemire's unbiased
// multiply-shift rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with zero n")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (r *RNG) Bool() bool {
	return r.Uint64()&1 == 1
}

// Perm returns a uniform random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle applies a Fisher-Yates shuffle over n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// splitmix64 advances the splitmix64 state and returns (newState, output).
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// Mix64 applies the splitmix64 finalizer to x: a cheap, well-distributed
// 64-bit mixer. The flat open-addressed tables of the protocol layer
// (internal/core's shelves, pathverify's send-dedup sets) use it for
// probe starts, so the magic constants live here, next to the generator
// built from the same function.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
