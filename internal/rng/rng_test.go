package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("sequence diverged at %d: %d != %d", i, got, want)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero seed produced repeats: %d unique of 100", len(seen))
	}
}

func TestStreamReproducible(t *testing.T) {
	base := New(7)
	s1 := base.Stream(3)
	s2 := base.Stream(3)
	for i := 0; i < 100; i++ {
		if s1.Uint64() != s2.Uint64() {
			t.Fatalf("same stream id diverged at %d", i)
		}
	}
}

func TestStreamsIndependent(t *testing.T) {
	base := New(7)
	s1 := base.Stream(0)
	s2 := base.Stream(1)
	same := 0
	for i := 0; i < 1000; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent streams collided %d/1000 times", same)
	}
}

func TestStreamDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Stream(5)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Stream advanced the parent generator")
		}
	}
}

func TestSplitAdvancesAndDiffers(t *testing.T) {
	a := New(11)
	c := a.Split()
	if a.Uint64() == c.Uint64() {
		t.Fatal("split stream mirrors parent")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(13)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-square-ish check: 6 buckets, 60000 draws, expect ~10000 each.
	r := New(17)
	const n, draws = 6, 60000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	for b, c := range counts {
		if math.Abs(float64(c)-draws/n) > 500 {
			t.Fatalf("bucket %d count %d deviates from %d", b, c, draws/n)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(19)
	var sum float64
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for _, n := range []int{0, 1, 2, 5, 64} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	// The first element of Perm(4) should be uniform over {0,1,2,3}.
	r := New(29)
	counts := make([]int, 4)
	const draws = 40000
	for i := 0; i < draws; i++ {
		counts[r.Perm(4)[0]]++
	}
	for v, c := range counts {
		if math.Abs(float64(c)-draws/4) > 400 {
			t.Fatalf("first element %d appeared %d times, want ~%d", v, c, draws/4)
		}
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(31)
	trues := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bool() {
			trues++
		}
	}
	if math.Abs(float64(trues)-draws/2) > 1000 {
		t.Fatalf("Bool returned true %d/%d times", trues, draws)
	}
}

func TestQuickIntnInRange(t *testing.T) {
	r := New(37)
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Stream(seed).Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStreamsDisjointPrefix(t *testing.T) {
	base := New(41)
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		return base.Stream(a).Uint64() != base.Stream(b).Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}
