// Package cache design notes.
//
// # Why a result cache is correct here at all
//
// The service's per-key determinism contract (established when the
// Service API replaced the single-walker surface, and preserved
// bit-for-bit by sharded and cluster execution) makes every request a
// pure function of (graph generation, service seed, request key,
// parameterization, budgets). A cache over pure functions is not an
// approximation: a hit IS the result, byte for byte, including the
// simulated cost counters. The golden tests in the root package pin
// exactly that — a cache-hit WalkResult/ManyResult/Trace deep-equals a
// fresh execution.
//
// # Key digest layout
//
// A cache key is an FNV-1a 128 digest over the fixed-width,
// fixed-order encoding of every result-determining input:
//
//	generation | kind | request key |
//	Params{LambdaC, Lambda, Eta, Theory, FixedLength, UniformCounts,
//	       PerCallBFS, Metropolis} |
//	maxRounds | retries | partial |
//	kind-specific operands (source/ℓ, the sources list, root + RST
//	options, x + mixing options)
//
// Every field is folded as a full 64-bit word (floats by IEEE bits,
// bools as 0/1), so the stream is self-aligning: no two distinct field
// sequences share an encoding. Fields that cannot change a result —
// worker count, shard count, cluster transport, backoff, batching
// windows — are deliberately absent: a sharded, clustered, or retried
// service shares cache entries with a sequential one because their
// results are bit-identical by construction. `retries` IS folded: under
// an injected fault plan, which attempt succeeds (and therefore which
// attempt-salted seed produced the result) depends on the retry budget.
//
// The service seed and the fault plan are construction-time constants of
// one Service — a cache lives and dies with its Service, so they need no
// digest bits.
//
// # Generation invalidation, not TTL
//
// Entries never expire: they are immutable facts about a frozen
// topology. The only invalidation is Service.InvalidateCache, which
// bumps the graph generation folded into every digest and purges the
// store. This is the groundwork for the dynamic-graphs roadmap item:
// a topology mutation bumps the generation, old-generation entries
// become unreachable instantly (their digests can no longer be
// produced), and requests already in flight complete epoch-pinned under
// the generation they digested — a leader finishing after a purge may
// briefly re-admit an old-generation entry, which no live digest can
// reach and which ages out through the LRU.
//
// # Singleflight leader rules
//
// A lookup that finds neither an entry nor a flight registers a flight
// and becomes the leader; it MUST Finish. Lookups that find the flight
// attach as waiters (CoalescedWaiters) and block until the leader
// publishes — N concurrent identical requests cost one execution.
// Async Submit handles join the same flights: a submitted walk attaches
// to an in-flight leader (sync or async) instead of queueing its own
// execution.
//
// On success the leader publishes the frozen value to every waiter and
// the store. On failure, waiters do NOT inherit the leader's error: the
// error may be private to the leader (its own cancelled context, its own
// exhausted retry budget), so each waiter re-resolves and exactly one of
// them leads a fresh attempt. A waiter whose own context expires while
// waiting fails with its own context error, leaving the leader
// undisturbed.
//
// # Frozen entries + copy-on-return
//
// Results are returned to callers by pointer throughout the public API,
// and results are mutable (slices of segments, positions, destinations).
// Storing the pointer a caller holds would let that caller corrupt every
// future hit. The decision: the executed result becomes a frozen master
// owned by the cache layer, and every return through the cached path —
// hit, miss, and coalesced alike — is a deep copy. Uniformity is the
// point: the leader's own return is a copy too, because its master may
// have been admitted or shared with waiters, and distinguishing "sole
// owner" cases buys microseconds against a multi-millisecond execution
// while making the invariant unverifiable. The -race stress suite runs
// concurrent hit/miss/coalesce traffic with mutating callers to prove
// returned results never alias the store.
//
// # Admission
//
// The store only ever sees successful, per-key-deterministic results:
// failures are never offered, partial ManyResults (Failed > 0) and
// batched compositions (deterministic per batch, not per key) are
// offered with NoStore so waiters still share them. On top of that, a
// per-entry size cap (MaxEntryBytes, clamped to the shard capacity)
// bounds what one entry may occupy, and an optional Admission policy —
// e.g. MinRounds, which prefers results whose re-execution would be
// expensive — filters what remains. Capacity is byte-accounted (deep
// payload estimate plus a fixed per-entry overhead) and enforced per
// shard by LRU eviction.
package cache
