package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func key(parts ...uint64) Key {
	d := NewDigest()
	for _, p := range parts {
		d.U64(p)
	}
	return d.Key()
}

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func storeVal(c *Cache, t *testing.T, k Key, v any, bytes, rounds int64) {
	t.Helper()
	_, _, err := c.Do(context.Background(), k, func() (Execution, error) {
		return Execution{Value: v, Bytes: bytes, Rounds: rounds}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDigestCanonical(t *testing.T) {
	d1, d2 := NewDigest(), NewDigest()
	d1.U64(7)
	d1.F64(1.5)
	d1.Bool(true)
	d1.I64(-3)
	d2.U64(7)
	d2.F64(1.5)
	d2.Bool(true)
	d2.I64(-3)
	if d1.Key() != d2.Key() {
		t.Fatal("identical field sequences digest differently")
	}
	d3 := NewDigest()
	d3.U64(7)
	d3.F64(1.5)
	d3.Bool(false)
	d3.I64(-3)
	if d1.Key() == d3.Key() {
		t.Fatal("flipped bool did not change the digest")
	}
	// Full-word bools keep the stream self-aligning: (1, nothing) vs
	// (nothing, 1) style collisions cannot happen across field widths.
	d4, d5 := NewDigest(), NewDigest()
	d4.Bool(true)
	d4.U64(0)
	d5.U64(1)
	d5.U64(0)
	if d4.Key() != d5.Key() {
		// Not a requirement, just documenting that Bool == U64(0/1).
		t.Fatal("Bool(true) must encode exactly like U64(1)")
	}
}

func TestHitMissStats(t *testing.T) {
	c := mustNew(t, Config{MaxBytes: 1 << 20})
	k := key(1)
	storeVal(c, t, k, "v", 100, 10)
	v, _, err := c.Do(context.Background(), k, func() (Execution, error) {
		t.Fatal("exec ran on a hit")
		return Execution{}, nil
	})
	if err != nil || v.(string) != "v" {
		t.Fatalf("hit returned (%v, %v)", v, err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.CoalescedWaiters != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if st.HitBytes != 100 {
		t.Fatalf("HitBytes = %d, want 100", st.HitBytes)
	}
	if st.BytesUsed != 100+entryOverhead {
		t.Fatalf("BytesUsed = %d, want %d", st.BytesUsed, 100+entryOverhead)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := mustNew(t, Config{MaxBytes: 1 << 20})
	k := key(1)
	boom := errors.New("boom")
	if _, _, err := c.Do(context.Background(), k, func() (Execution, error) {
		return Execution{}, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	storeVal(c, t, k, "ok", 1, 1)
	if st := c.Stats(); st.Misses != 2 {
		t.Fatalf("Misses = %d: the failed execution must not have been cached", st.Misses)
	}
}

func TestNoStoreSharesButSkipsStore(t *testing.T) {
	c := mustNew(t, Config{MaxBytes: 1 << 20})
	k := key(1)
	_, _, err := c.Do(context.Background(), k, func() (Execution, error) {
		return Execution{Value: "partial", Bytes: 1, NoStore: true}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatal("NoStore execution was stored")
	}
	if st := c.Stats(); st.BytesUsed != 0 {
		t.Fatalf("BytesUsed = %d after NoStore", st.BytesUsed)
	}
}

func TestLRUEvictionByteAccounted(t *testing.T) {
	// One shard so the LRU order is global and the arithmetic exact.
	c := mustNew(t, Config{MaxBytes: 4 * (256 + entryOverhead), Shards: 1, MaxEntryBytes: 1 << 20})
	for i := uint64(0); i < 4; i++ {
		storeVal(c, t, key(i), i, 256, 1)
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	// Touch key 0 so key 1 is the LRU victim.
	if _, _, o := c.Begin(key(0)); o != Hit {
		t.Fatalf("outcome = %v, want hit", o)
	}
	storeVal(c, t, key(9), 9, 256, 1)
	_, f, o := c.Begin(key(1))
	if o != Miss {
		t.Fatal("LRU victim should have been key 1")
	}
	// Begin(Miss) made us the leader of key 1; retire the flight.
	c.Finish(key(1), f, Execution{}, errors.New("abandon"))
	if _, _, o := c.Begin(key(0)); o != Hit {
		t.Fatal("recently-touched key 0 was evicted before key 1")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
	want := int64(4 * (256 + entryOverhead))
	if st.BytesUsed != want {
		t.Fatalf("BytesUsed = %d, want %d", st.BytesUsed, want)
	}
}

func TestPerEntryCap(t *testing.T) {
	c := mustNew(t, Config{MaxBytes: 1 << 20, MaxEntryBytes: 512})
	storeVal(c, t, key(1), "big", 513, 1)
	if c.Len() != 0 {
		t.Fatal("oversized entry was admitted")
	}
	storeVal(c, t, key(2), "fits", 512, 1)
	if c.Len() != 1 {
		t.Fatal("entry at the cap was rejected")
	}
}

func TestAdmissionPolicy(t *testing.T) {
	c := mustNew(t, Config{MaxBytes: 1 << 20, Admit: MinRounds(100)})
	storeVal(c, t, key(1), "cheap", 10, 99)
	storeVal(c, t, key(2), "dear", 10, 100)
	if c.Len() != 1 {
		t.Fatalf("Len = %d: MinRounds(100) must admit only the 100-round result", c.Len())
	}
	if _, _, o := c.Begin(key(2)); o != Hit {
		t.Fatal("the admitted entry is not the high-rounds one")
	}
}

func TestPurge(t *testing.T) {
	c := mustNew(t, Config{MaxBytes: 1 << 20})
	for i := uint64(0); i < 10; i++ {
		storeVal(c, t, key(i), i, 64, 1)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatal("entries survived Purge")
	}
	st := c.Stats()
	if st.Evictions != 10 || st.BytesUsed != 0 {
		t.Fatalf("stats after purge = %+v", st)
	}
}

func TestSingleflightCoalesce(t *testing.T) {
	c := mustNew(t, Config{MaxBytes: 1 << 20})
	k := key(1)
	const waiters = 7
	release := make(chan struct{})
	c.Gate = func(Key) { <-release }
	var execs atomic.Int64
	results := make(chan any, waiters+1)
	var wg sync.WaitGroup
	for i := 0; i < waiters+1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.Do(context.Background(), k, func() (Execution, error) {
				execs.Add(1)
				return Execution{Value: "shared", Bytes: 1}, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results <- v
		}()
	}
	// Wait until every non-leader goroutine has attached to the flight.
	deadline := time.Now().Add(10 * time.Second)
	for c.Stats().CoalescedWaiters < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("only %d waiters attached", c.Stats().CoalescedWaiters)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := execs.Load(); got != 1 {
		t.Fatalf("%d executions for %d concurrent identical requests", got, waiters+1)
	}
	close(results)
	n := 0
	for v := range results {
		n++
		if v.(string) != "shared" {
			t.Fatalf("waiter got %v", v)
		}
	}
	if n != waiters+1 {
		t.Fatalf("%d results delivered, want %d", n, waiters+1)
	}
	st := c.Stats()
	if st.Misses != 1 || st.CoalescedWaiters != waiters || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 1 miss + %d coalesced", st, waiters)
	}
}

func TestLeaderFailureWaiterRetries(t *testing.T) {
	c := mustNew(t, Config{MaxBytes: 1 << 20})
	k := key(1)
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	c.Gate = func(Key) {
		once.Do(func() { close(leaderIn) })
		<-release
	}
	var execs atomic.Int64
	exec := func() (Execution, error) {
		if execs.Add(1) == 1 {
			return Execution{}, errors.New("leader-private failure")
		}
		return Execution{Value: "recovered", Bytes: 1}, nil
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // doomed leader
		defer wg.Done()
		if _, _, err := c.Do(context.Background(), k, exec); err == nil {
			t.Error("leader attempt should have failed")
		}
	}()
	<-leaderIn
	done := make(chan any, 1)
	wg.Add(1)
	go func() { // waiter; becomes the second leader after the failure
		defer wg.Done()
		v, _, err := c.Do(context.Background(), k, exec)
		if err != nil {
			t.Error(err)
			return
		}
		done <- v
	}()
	for c.Stats().CoalescedWaiters < 1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	if v := <-done; v.(string) != "recovered" {
		t.Fatalf("waiter got %v after leader failure", v)
	}
	wg.Wait()
	if execs.Load() != 2 {
		t.Fatalf("execs = %d, want 2 (failed leader + retrying waiter)", execs.Load())
	}
}

func TestWaiterContextCancel(t *testing.T) {
	c := mustNew(t, Config{MaxBytes: 1 << 20})
	k := key(1)
	release := make(chan struct{})
	c.Gate = func(Key) { <-release }
	go func() {
		_, _, _ = c.Do(context.Background(), k, func() (Execution, error) {
			return Execution{Value: "late", Bytes: 1}, nil
		})
	}()
	for c.Stats().Misses < 1 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, k, func() (Execution, error) {
			t.Error("cancelled waiter must not execute")
			return Execution{}, nil
		})
		errc <- err
	}()
	for c.Stats().CoalescedWaiters < 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	close(release) // leader completes undisturbed
}

func TestConcurrentStress(t *testing.T) {
	c := mustNew(t, Config{MaxBytes: 64 << 10})
	const (
		goroutines = 16
		opsEach    = 400
		keySpace   = 37
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				kid := uint64((g*31 + i) % keySpace)
				want := fmt.Sprintf("value-%d", kid)
				v, _, err := c.Do(context.Background(), key(kid), func() (Execution, error) {
					return Execution{Value: want, Bytes: int64(64 + kid)}, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if v.(string) != want {
					t.Errorf("key %d returned %v", kid, v)
					return
				}
				if i%97 == 0 {
					c.Purge()
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses+st.CoalescedWaiters != goroutines*opsEach {
		t.Fatalf("lookup outcomes %d+%d+%d do not sum to %d ops",
			st.Hits, st.Misses, st.CoalescedWaiters, goroutines*opsEach)
	}
	if st.BytesUsed < 0 {
		t.Fatalf("BytesUsed underflowed: %d", st.BytesUsed)
	}
}

func TestNewRejectsBadCapacity(t *testing.T) {
	if _, err := New(Config{MaxBytes: 0}); err == nil {
		t.Fatal("MaxBytes 0 accepted")
	}
	if _, err := New(Config{MaxBytes: -5}); err == nil {
		t.Fatal("negative MaxBytes accepted")
	}
}
