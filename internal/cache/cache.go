// Package cache implements the serving tier's deterministic result
// cache: a sharded, byte-accounted LRU with singleflight request
// coalescing and pluggable admission. See doc.go for the design notes
// (key digest layout, generation invalidation, leader rules, the
// frozen-entry/copy-on-return contract).
package cache

import (
	"context"
	"fmt"
	"hash"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"
)

// Key is a canonical request digest: FNV-1a 128 over the fixed-width
// encoding a Digest builds. Two requests share a Key iff every
// result-determining input (graph generation, request kind, request key,
// parameterization, budgets) matches, so a Key collision-free lookup is a
// proof of result identity under the per-key determinism contract.
type Key [16]byte

// Digest accumulates the result-determining fields of a request into a
// Key. Fields must be written in a fixed order with fixed widths — the
// encoding, not the caller's formatting, is what makes keys canonical.
type Digest struct{ h hash.Hash }

// NewDigest returns an empty digest.
func NewDigest() *Digest { return &Digest{h: fnv.New128a()} }

// U64 folds a fixed-width unsigned word.
func (d *Digest) U64(v uint64) {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	d.h.Write(b[:])
}

// I64 folds a signed word (two's-complement, fixed width).
func (d *Digest) I64(v int64) { d.U64(uint64(v)) }

// F64 folds a float by its IEEE-754 bits (so -0 != +0 and NaNs are
// whatever bits the caller holds — bit identity, not numeric equality).
func (d *Digest) F64(v float64) { d.U64(math.Float64bits(v)) }

// Bool folds a flag as a full word, keeping the stream self-aligning.
func (d *Digest) Bool(v bool) {
	if v {
		d.U64(1)
	} else {
		d.U64(0)
	}
}

// Key returns the digest of everything folded so far.
func (d *Digest) Key() Key {
	var k Key
	copy(k[:], d.h.Sum(nil))
	return k
}

// EntryInfo is what an Admission policy sees about a candidate result.
type EntryInfo struct {
	// Bytes is the result's deep size estimate (payload, not overhead).
	Bytes int64
	// Rounds is the simulated rounds the execution cost — the work a
	// future hit saves.
	Rounds int64
}

// Admission decides whether a successful result is worth a cache slot.
// Policies only ever see successful, per-key-deterministic results: the
// service never offers failed, partial or composition-dependent (batched)
// results for admission in the first place.
type Admission func(EntryInfo) bool

// MinRounds returns the cost-aware admission policy that only caches
// results whose execution cost at least r simulated rounds — preferring
// the entries a hit saves the most work on.
func MinRounds(r int64) Admission {
	return func(e EntryInfo) bool { return e.Rounds >= r }
}

// Stats is the cache's counter snapshot.
type Stats struct {
	// Hits counts lookups served from the store; Misses counts lookups
	// that led an execution.
	Hits, Misses int64
	// CoalescedWaiters counts lookups that attached to another request's
	// in-flight execution instead of running their own.
	CoalescedWaiters int64
	// Evictions counts entries dropped: LRU pressure plus purges
	// (InvalidateCache).
	Evictions int64
	// BytesUsed is the current charged footprint (payload + per-entry
	// overhead); HitBytes sums the payload bytes served from the store.
	BytesUsed, HitBytes int64
}

// Outcome reports how a lookup was resolved.
type Outcome uint8

const (
	// Miss: the caller leads the execution (and, via Begin, MUST Finish
	// the returned flight).
	Miss Outcome = iota
	// Hit: served from the store.
	Hit
	// Coalesced: attached to an in-flight leader.
	Coalesced
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return "miss"
	}
}

// Flight is one in-progress execution; concurrent lookups of its key
// attach to it instead of executing. The leader publishes exactly once
// via Finish; value/err are safe to read only after done is closed.
type Flight struct {
	done  chan struct{}
	value any
	err   error
}

// Execution is a completed execution offered back to the cache.
type Execution struct {
	// Value is the frozen result master. Callers must treat it as
	// immutable from here on (the copy-on-return contract).
	Value any
	// Bytes is the deep size estimate charged against capacity.
	Bytes int64
	// Rounds is the simulated-round cost, for admission policies.
	Rounds int64
	// NoStore shares the value with coalesced waiters but keeps it out of
	// the store — for results that are not per-key deterministic (batched
	// compositions) or otherwise uncacheable.
	NoStore bool
}

// entry is one stored result plus its LRU links.
type entry struct {
	key        Key
	value      any
	bytes      int64 // payload bytes (overhead charged separately)
	prev, next *entry
}

// entryOverhead approximates the per-entry bookkeeping charge (map slot,
// entry struct, LRU links) added on top of the payload bytes.
const entryOverhead = 160

// shard is one lock domain: a map + intrusive LRU list over its slice of
// the byte budget, plus the in-flight executions keyed here.
type shard struct {
	mu      sync.Mutex
	entries map[Key]*entry
	flights map[Key]*Flight
	// head is most-recently-used, tail least; nil when empty.
	head, tail *entry
	bytes, cap int64
}

// Config tunes a Cache.
type Config struct {
	// MaxBytes is the total capacity across shards (required, > 0).
	MaxBytes int64
	// Shards is the lock-domain count (default 8). Keys spread uniformly
	// (they are hashes), each shard owning MaxBytes/Shards.
	Shards int
	// MaxEntryBytes caps a single entry's payload (default MaxBytes/8,
	// always clamped to the per-shard capacity): oversized results are
	// returned but never admitted.
	MaxEntryBytes int64
	// Admit is the optional extra admission policy (nil = admit
	// everything under MaxEntryBytes).
	Admit Admission
}

// Cache is a sharded LRU of immutable results with singleflight
// coalescing. Safe for concurrent use.
type Cache struct {
	shards   []shard
	maxEntry int64
	admit    Admission

	// Gate, when set, is invoked by Do's leader after its flight is
	// registered and before exec runs — a test hook to hold an execution
	// in flight while waiters attach. Set it before any traffic.
	Gate func(Key)

	hits, misses, coalesced atomic.Int64
	evictions               atomic.Int64
	bytesUsed, hitBytes     atomic.Int64
}

// New builds a cache over cfg.MaxBytes bytes.
func New(cfg Config) (*Cache, error) {
	if cfg.MaxBytes <= 0 {
		return nil, fmt.Errorf("cache: capacity must be positive, got %d bytes", cfg.MaxBytes)
	}
	n := cfg.Shards
	if n <= 0 {
		n = 8
	}
	if int64(n) > cfg.MaxBytes {
		n = 1 // degenerate tiny cache: one shard owning the whole budget
	}
	shardCap := cfg.MaxBytes / int64(n)
	maxEntry := cfg.MaxEntryBytes
	if maxEntry <= 0 {
		maxEntry = cfg.MaxBytes / 8
	}
	if maxEntry > shardCap-entryOverhead {
		maxEntry = shardCap - entryOverhead
	}
	c := &Cache{
		shards:   make([]shard, n),
		maxEntry: maxEntry,
		admit:    cfg.Admit,
	}
	for i := range c.shards {
		c.shards[i] = shard{
			entries: make(map[Key]*entry),
			flights: make(map[Key]*Flight),
			cap:     shardCap,
		}
	}
	return c, nil
}

// shardOf routes a key to its lock domain. Keys are FNV outputs, so any
// fixed byte window is uniform.
func (c *Cache) shardOf(k Key) *shard {
	if len(c.shards) == 1 {
		return &c.shards[0]
	}
	idx := (uint64(k[0]) | uint64(k[1])<<8 | uint64(k[2])<<16 | uint64(k[3])<<24) % uint64(len(c.shards))
	return &c.shards[idx]
}

// Begin resolves k without blocking: a stored value (Hit), an in-flight
// execution to Wait on (Coalesced), or leadership of a fresh flight
// (Miss) — a Miss caller MUST eventually Finish the returned flight, or
// every later lookup of k blocks forever.
func (c *Cache) Begin(k Key) (any, *Flight, Outcome) {
	sh := c.shardOf(k)
	sh.mu.Lock()
	if e, ok := sh.entries[k]; ok {
		sh.moveFrontLocked(e)
		v, b := e.value, e.bytes
		sh.mu.Unlock()
		c.hits.Add(1)
		c.hitBytes.Add(b)
		return v, nil, Hit
	}
	if f, ok := sh.flights[k]; ok {
		sh.mu.Unlock()
		c.coalesced.Add(1)
		return nil, f, Coalesced
	}
	f := &Flight{done: make(chan struct{})}
	sh.flights[k] = f
	sh.mu.Unlock()
	c.misses.Add(1)
	return nil, f, Miss
}

// Attach resolves k without ever leading: a stored value (Hit), an
// in-flight execution to Wait on (Coalesced), or (nil, nil, Miss) — and a
// Miss registers no flight, so the caller executes on its own (still
// counted as a miss) with no Finish obligation. For callers whose miss
// path runs an execution that is not per-key deterministic (the service's
// batched submissions) and therefore must never publish to a shared
// flight.
func (c *Cache) Attach(k Key) (any, *Flight, Outcome) {
	sh := c.shardOf(k)
	sh.mu.Lock()
	if e, ok := sh.entries[k]; ok {
		sh.moveFrontLocked(e)
		v, b := e.value, e.bytes
		sh.mu.Unlock()
		c.hits.Add(1)
		c.hitBytes.Add(b)
		return v, nil, Hit
	}
	if f, ok := sh.flights[k]; ok {
		sh.mu.Unlock()
		c.coalesced.Add(1)
		return nil, f, Coalesced
	}
	sh.mu.Unlock()
	c.misses.Add(1)
	return nil, nil, Miss
}

// Wait blocks on a Coalesced flight until its leader finishes or ctx
// expires. A non-nil error is either the leader's (ctx.Err() == nil) or
// the waiter's own context error.
func (c *Cache) Wait(ctx context.Context, f *Flight) (any, error) {
	select {
	case <-f.done:
		return f.value, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Finish completes a flight obtained from a Miss: publishes the result to
// every waiter, stores it when admissible, and retires the flight. The
// stored master is ex.Value itself — the caller must not mutate it after
// this call (copy-on-return is the caller's job).
func (c *Cache) Finish(k Key, f *Flight, ex Execution, err error) {
	f.value, f.err = ex.Value, err
	sh := c.shardOf(k)
	sh.mu.Lock()
	delete(sh.flights, k)
	if err == nil && !ex.NoStore && c.admissible(ex) {
		sh.insertLocked(k, ex.Value, ex.Bytes, c)
	}
	sh.mu.Unlock()
	close(f.done)
}

// admissible applies the per-entry size cap and the configured policy.
func (c *Cache) admissible(ex Execution) bool {
	if ex.Bytes > c.maxEntry {
		return false
	}
	return c.admit == nil || c.admit(EntryInfo{Bytes: ex.Bytes, Rounds: ex.Rounds})
}

// Do resolves k through the cache: a stored value returns immediately, an
// in-flight execution is waited on, and otherwise exec runs as the
// leader. On leader failure, waiters re-resolve (one of them leads a
// fresh attempt) instead of inheriting an error that may be private to
// the leader — its cancelled context, its exhausted retry budget. exec's
// Execution.Value is frozen on return; see the copy-on-return contract.
func (c *Cache) Do(ctx context.Context, k Key, exec func() (Execution, error)) (any, Outcome, error) {
	for {
		v, f, o := c.Begin(k)
		switch o {
		case Hit:
			return v, Hit, nil
		case Coalesced:
			v, err := c.Wait(ctx, f)
			if err == nil {
				return v, Coalesced, nil
			}
			if cerr := ctx.Err(); cerr != nil {
				return nil, Coalesced, cerr
			}
			continue // leader failed; contend to lead the next attempt
		default:
			if c.Gate != nil {
				c.Gate(k)
			}
			ex, err := exec()
			c.Finish(k, f, ex, err)
			if err != nil {
				return nil, Miss, err
			}
			return ex.Value, Miss, nil
		}
	}
}

// Purge drops every stored entry (counted as evictions). In-flight
// executions are untouched: they complete and publish to their waiters,
// and may re-admit under keys no live digest produces anymore — such
// strays age out through the LRU.
func (c *Cache) Purge() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n := int64(len(sh.entries))
		freed := sh.bytes
		sh.entries = make(map[Key]*entry)
		sh.head, sh.tail = nil, nil
		sh.bytes = 0
		sh.mu.Unlock()
		c.evictions.Add(n)
		c.bytesUsed.Add(-freed)
	}
}

// Len reports the number of stored entries (test/debug helper).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Stats returns the counter snapshot.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:             c.hits.Load(),
		Misses:           c.misses.Load(),
		CoalescedWaiters: c.coalesced.Load(),
		Evictions:        c.evictions.Load(),
		BytesUsed:        c.bytesUsed.Load(),
		HitBytes:         c.hitBytes.Load(),
	}
}

// --- shard internals (callers hold sh.mu) ---

// insertLocked stores (k, v) at the LRU front and evicts from the tail
// until the shard fits its capacity again.
func (sh *shard) insertLocked(k Key, v any, bytes int64, c *Cache) {
	if old, ok := sh.entries[k]; ok {
		// A leader finishing after a Purge raced a re-execution of the
		// same key; keep the newer value (they are bit-identical anyway).
		sh.removeLocked(old, c)
	}
	e := &entry{key: k, value: v, bytes: bytes}
	sh.entries[k] = e
	sh.pushFrontLocked(e)
	sh.bytes += bytes + entryOverhead
	c.bytesUsed.Add(bytes + entryOverhead)
	for sh.bytes > sh.cap && sh.tail != nil {
		victim := sh.tail
		sh.removeLocked(victim, c)
		c.evictions.Add(1)
	}
}

func (sh *shard) removeLocked(e *entry, c *Cache) {
	delete(sh.entries, e.key)
	sh.unlinkLocked(e)
	sh.bytes -= e.bytes + entryOverhead
	c.bytesUsed.Add(-(e.bytes + entryOverhead))
}

func (sh *shard) pushFrontLocked(e *entry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *shard) unlinkLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *shard) moveFrontLocked(e *entry) {
	if sh.head == e {
		return
	}
	sh.unlinkLocked(e)
	sh.pushFrontLocked(e)
}
