package distwalk_test

// Chaos suite for cluster resilience: real distwalkd processes are
// SIGKILLed, SIGSTOPped, and idle-reaped mid-flight while the Service
// must (a) surface typed ErrClusterEngine failures within its round
// deadline instead of hanging, (b) recover bit-identically in process
// under WithClusterFallback, and (c) reconnect with the pinned digest
// once a killed engine returns on its old port. These are the acceptance
// criteria of the resilience PR, run under -race in CI's chaos-cluster
// step.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"syscall"
	"testing"
	"time"

	"distwalk"
)

// waitMidRun polls an engine's expvars until it is demonstrably inside a
// run (so a kill lands mid-protocol, not between runs).
func waitMidRun(t *testing.T, eng *engineProc) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		m := fetchEngineVars(t, eng.debug)
		if m["runs"] >= 1 && m["rounds"] >= 200 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("engine never reached mid-run: %v", m)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterChaosKillMidRunFailsTyped is the headline robustness fix: a
// SIGKILLed engine mid-run surfaces a typed ErrClusterEngine/ErrEngineLost
// within the round deadline — before this PR the client blocked on a
// deadline-free read forever.
func TestClusterChaosKillMidRunFailsTyped(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster chaos over TCP skipped in -short mode")
	}
	g, err := distwalk.Torus(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	eng := startEngine(t, "-debug-addr", "127.0.0.1:0")
	svc, err := distwalk.NewService(g, 42,
		distwalk.WithWorkers(1),
		distwalk.WithCluster(eng.addr),
		distwalk.WithClusterRoundTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	errCh := make(chan error, 1)
	go func() {
		_, err := svc.SingleRandomWalk(context.Background(), 1, 0, 300_000)
		errCh <- err
	}()
	waitMidRun(t, eng)
	if err := eng.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("request against a SIGKILLed engine succeeded")
		}
		if !errors.Is(err, distwalk.ErrClusterEngine) {
			t.Fatalf("mid-run kill surfaced untyped: %v", err)
		}
		if !errors.Is(err, distwalk.ErrEngineLost) {
			t.Fatalf("mid-run kill not classified as engine loss: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("request hung past the round deadline after SIGKILL")
	}

	// The supervisor recorded the loss: the engine is no longer healthy.
	st := svc.Stats()
	if len(st.Cluster.Health) != 1 || st.Cluster.Health[0] == "healthy" {
		t.Fatalf("killed engine still reported healthy: %+v", st.Cluster)
	}
	// Without fallback, follow-up requests keep failing typed — fast.
	if _, err := svc.SingleRandomWalk(context.Background(), 2, 0, 64); !errors.Is(err, distwalk.ErrClusterEngine) {
		t.Fatalf("request after kill = %v, want ErrClusterEngine", err)
	}
}

// TestClusterChaosHungEngineTimesOut: a SIGSTOPped engine (the
// partition/hang case — the TCP connection stays open but nothing
// answers) fails the request with ErrEngineTimeout within the configured
// round deadline.
func TestClusterChaosHungEngineTimesOut(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster chaos over TCP skipped in -short mode")
	}
	g, err := distwalk.Torus(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	eng := startEngine(t, "-debug-addr", "127.0.0.1:0")
	svc, err := distwalk.NewService(g, 42,
		distwalk.WithWorkers(1),
		distwalk.WithCluster(eng.addr),
		distwalk.WithClusterRoundTimeout(time.Second),
		distwalk.WithClusterHeartbeat(-1)) // isolate the deadline path
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	errCh := make(chan error, 1)
	go func() {
		_, err := svc.SingleRandomWalk(context.Background(), 1, 0, 300_000)
		errCh <- err
	}()
	waitMidRun(t, eng)
	if err := eng.cmd.Process.Signal(syscall.SIGSTOP); err != nil {
		t.Fatal(err)
	}
	defer func() {
		eng.cmd.Process.Signal(syscall.SIGCONT)
		eng.cmd.Process.Kill()
	}()

	start := time.Now()
	select {
	case err := <-errCh:
		if !errors.Is(err, distwalk.ErrClusterEngine) || !errors.Is(err, distwalk.ErrEngineTimeout) {
			t.Fatalf("hung engine surfaced %v, want ErrClusterEngine + ErrEngineTimeout", err)
		}
		if elapsed := time.Since(start); elapsed > 20*time.Second {
			t.Fatalf("timeout took %v, want about the 1s round deadline", elapsed)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("request hung on a stopped engine despite the round deadline")
	}
}

// TestClusterChaosFallbackRecoversBitIdentical is the acceptance
// criterion for graceful degradation: with WithClusterFallback, killing
// the engine mid-run makes the request complete in process with results
// bit-identical to WithShards(S) — the same-seed re-execution argument —
// and once the engine restarts on its old port the supervisor reconnects
// with the pinned digest and traffic returns to the cluster.
func TestClusterChaosFallbackRecoversBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster chaos over TCP skipped in -short mode")
	}
	g, err := distwalk.Torus(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	const engines = 2
	// Reference digests from the in-process sharded service cluster mode
	// is bit-identical to — fallback must land exactly here.
	ref, err := distwalk.NewService(g, 42, distwalk.WithWorkers(1), distwalk.WithShards(engines))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	eng0 := startEngine(t, "-debug-addr", "127.0.0.1:0")
	eng1 := startEngine(t)
	svc, err := distwalk.NewService(g, 42,
		distwalk.WithWorkers(1),
		distwalk.WithCluster(eng0.addr, eng1.addr),
		distwalk.WithClusterFallback(),
		distwalk.WithClusterRoundTimeout(5*time.Second),
		distwalk.WithClusterBackoff(50*time.Millisecond, 500*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Kill engine 0 mid-run: the long walk must still complete, and
	// bit-identically to the reference.
	type result struct {
		out string
		err error
	}
	resCh := make(chan result, 1)
	longWalk := func(svc *distwalk.Service) (string, error) {
		res, err := svc.SingleRandomWalk(context.Background(), 99, 0, 300_000)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("dest=%d len=%d cost=%+v", res.Destination, res.Length, res.Cost), nil
	}
	go func() {
		out, err := longWalk(svc)
		resCh <- result{out, err}
	}()
	waitMidRun(t, eng0)
	if err := eng0.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	var got result
	select {
	case got = <-resCh:
	case <-time.After(60 * time.Second):
		t.Fatal("fallback request hung after SIGKILL")
	}
	if got.err != nil {
		t.Fatalf("request with fallback failed: %v", got.err)
	}
	want, err := longWalk(ref)
	if err != nil {
		t.Fatal(err)
	}
	if got.out != want {
		t.Fatalf("fallback diverged from WithShards(%d):\n  cluster:  %s\n  sharded:  %s", engines, got.out, want)
	}
	st := svc.Stats()
	if st.Cluster.Failovers < 1 {
		t.Fatalf("Stats().Cluster.Failovers = %d, want >= 1", st.Cluster.Failovers)
	}

	// Restart the engine on its old port: the supervisor must reconnect
	// (re-handshaking against the pinned digest) and report healthy again.
	eng0b := startEngineAt(t, eng0.addr, "-debug-addr", "127.0.0.1:0")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := svc.SingleRandomWalk(context.Background(), 7, 0, 64); err == nil {
			st = svc.Stats()
			if st.Cluster.Health[0] == "healthy" && st.Cluster.Reconnects >= 1 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("supervisor never reconnected to the restarted engine: %+v", svc.Stats().Cluster)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Full identity sweep on the healed cluster: every workload digest
	// matches the in-process reference again, and the restarted engine is
	// actually serving (not silently failed over).
	for _, wl := range shardWorkloads() {
		a, errA := wl.run(ref, 5)
		b, errB := wl.run(svc, 5)
		if errA != nil || errB != nil {
			t.Fatalf("%s after reconnect: sharded err %v, cluster err %v", wl.name, errA, errB)
		}
		if a != b {
			t.Errorf("%s diverged after reconnect:\n  sharded: %s\n  cluster: %s", wl.name, a, b)
		}
	}
	if m := fetchEngineVars(t, eng0b.debug); m["runs"] == 0 {
		t.Errorf("restarted engine served no runs after reconnect: %v", m)
	}
}

// TestClusterChaosHeartbeatDetectsIdleDeath: an engine killed while the
// cluster is idle is discovered by the heartbeat (no request in flight to
// trip a deadline), and the next request falls over in process with
// results identical to WithShards.
func TestClusterChaosHeartbeatDetectsIdleDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster chaos over TCP skipped in -short mode")
	}
	g, err := distwalk.Torus(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := distwalk.NewService(g, 42, distwalk.WithWorkers(1), distwalk.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	eng := startEngine(t)
	svc, err := distwalk.NewService(g, 42,
		distwalk.WithWorkers(1),
		distwalk.WithCluster(eng.addr),
		distwalk.WithClusterFallback(),
		distwalk.WithClusterHeartbeat(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Warm up so a session exists to heartbeat on, then kill while idle.
	if _, err := svc.SingleRandomWalk(context.Background(), 1, 0, 64); err != nil {
		t.Fatal(err)
	}
	if err := eng.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for svc.Stats().Cluster.HeartbeatMisses == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("heartbeat never noticed the idle death: %+v", svc.Stats().Cluster)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The next request finds the dead session, falls over, and matches
	// the in-process reference bit for bit.
	a, errA := ref.SingleRandomWalk(context.Background(), 2, 0, 512)
	b, errB := svc.SingleRandomWalk(context.Background(), 2, 0, 512)
	if errA != nil || errB != nil {
		t.Fatalf("post-death request: ref err %v, cluster err %v", errA, errB)
	}
	if a.Destination != b.Destination || a.Length != b.Length || a.Cost != b.Cost {
		t.Fatalf("fallback after idle death diverged: ref %+v, cluster %+v", a, b)
	}
	if svc.Stats().Cluster.Failovers < 1 {
		t.Fatalf("Failovers = %d, want >= 1", svc.Stats().Cluster.Failovers)
	}
}

// TestClusterChaosIdleReap: the daemon's -idle-timeout reaps a session
// whose client neither runs nor heartbeats, the client's next request
// fails typed (never hangs), and the request after that reconnects — the
// server-side half of liveness.
func TestClusterChaosIdleReap(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster chaos over TCP skipped in -short mode")
	}
	g, err := distwalk.Torus(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	eng := startEngine(t, "-idle-timeout", "150ms", "-debug-addr", "127.0.0.1:0")
	svc, err := distwalk.NewService(g, 42,
		distwalk.WithWorkers(1),
		distwalk.WithCluster(eng.addr),
		distwalk.WithClusterHeartbeat(-1), // mute client: let the reaper fire
		distwalk.WithClusterRoundTimeout(5*time.Second),
		distwalk.WithClusterBackoff(20*time.Millisecond, 200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.SingleRandomWalk(context.Background(), 1, 0, 64); err != nil {
		t.Fatal(err)
	}

	// The session idles past the daemon's window and gets reaped.
	deadline := time.Now().Add(15 * time.Second)
	for fetchEngineVars(t, eng.debug)["idle_reaped"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("daemon never idle-reaped the mute session")
		}
		time.Sleep(25 * time.Millisecond)
	}

	// The next request may land on the corpse — typed failure, no hang —
	// and a follow-up reconnects to the (still running) daemon. Bound the
	// loop: with reconnection working this converges in one or two tries.
	var lastErr error
	deadline = time.Now().Add(30 * time.Second)
	for {
		_, err := svc.SingleRandomWalk(context.Background(), 2, 0, 64)
		if err == nil {
			break
		}
		if !errors.Is(err, distwalk.ErrClusterEngine) {
			t.Fatalf("reaped session surfaced untyped: %v", err)
		}
		lastErr = err
		if time.Now().After(deadline) {
			t.Fatalf("service never reconnected after idle reap: %v", lastErr)
		}
		time.Sleep(30 * time.Millisecond)
	}
	if st := svc.Stats(); st.Cluster.Reconnects < 1 {
		t.Fatalf("Reconnects = %d after idle reap recovery, want >= 1", st.Cluster.Reconnects)
	}
	// The error text names the engine for operators grepping logs.
	if lastErr != nil && !strings.Contains(lastErr.Error(), eng.addr) {
		t.Errorf("typed failure does not name the engine address: %v", lastErr)
	}
}
