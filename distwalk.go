// Package distwalk implements the algorithms of "Efficient Distributed
// Random Walks with Applications" (Das Sarma, Nanongkai, Pandurangan,
// Tetali; PODC 2010) on a simulated CONGEST network, together with the
// paper's two applications: uniform random spanning trees and
// decentralized mixing-time estimation.
//
// The headline algorithm samples the endpoint of an ℓ-step random walk in
// Õ(√(ℓD)) communication rounds — sublinear in ℓ — by preparing many short
// walks in parallel and stitching them together (Theorem 2.5).
//
// # Service API
//
// The entry point is Service: a long-lived, concurrency-safe pool that
// serves walk requests, walk batches, spanning trees and mixing estimates
// over one topology — walk sampling as a reusable network primitive, which
// is how the paper frames it. Every request takes a context (cancellation
// reaches down into the simulated round loop), is identified by a request
// key that fully determines its result (per-key determinism, independent
// of concurrency and call order), and reports its exact simulated
// round/message cost:
//
//	g, _ := distwalk.Torus(32, 32)
//	svc, _ := distwalk.NewService(g, 42)
//	defer svc.Close()
//	res, _ := svc.SingleRandomWalk(ctx, 1, 0, 100_000)
//	fmt.Println(res.Destination, res.Cost.Rounds) // ≪ 100000 rounds
//
// Tuning is functional-options style (WithEta, WithTheory, WithMetropolis,
// WithTrials, ...), at construction for service defaults and per request
// for overrides. Failures wrap the exported sentinel errors (ErrBadNode,
// ErrBudgetExceeded, ErrDisconnected, ...) and are errors.Is-able; see
// errors.go for the taxonomy.
//
// # Dynamic graphs
//
// The served topology is mutable under live traffic: ApplyMutations
// applies a batch of edge edits copy-on-write and publishes it as the
// next Generation. Requests in flight across the boundary either
// complete epoch-pinned against the snapshot they admitted under (the
// default) or fail fast with ErrStaleGeneration (WithStaleAbort) and,
// under WithRetry, re-execute on the new topology. See mutate.go.
//
// The single-threaded Walker shim that predated Service (NewWalker and
// the bare-Params entry points) has been removed; the same engine is
// reachable through Service with identical bit-exact results, and the
// low-level surface lives in internal/core for this module's own tests.
package distwalk

import (
	"distwalk/internal/congest"
	"distwalk/internal/core"
	"distwalk/internal/dist"
	"distwalk/internal/fault"
	"distwalk/internal/graph"
	"distwalk/internal/mixing"
	"distwalk/internal/rng"
	"distwalk/internal/spanning"
	"distwalk/internal/spectral"
	"distwalk/internal/wire"
)

// Re-exported core types. The implementations live in internal packages;
// these aliases are the supported public surface.
type (
	// Graph is an undirected (optionally weighted) multigraph.
	Graph = graph.G
	// NodeID identifies a vertex (0..n-1).
	NodeID = graph.NodeID
	// Params tunes the walk algorithms; see DefaultParams. Prefer the
	// functional options (WithEta, WithTheory, ...) with Service.
	Params = core.Params
	// WalkResult describes one completed walk and its simulated cost.
	WalkResult = core.WalkResult
	// ManyResult describes a MANY-RANDOM-WALKS batch.
	ManyResult = core.ManyResult
	// Trace is a regenerated walk: per-node positions and first visits.
	Trace = core.Trace
	// Cost aggregates rounds, messages and queueing of simulated runs.
	Cost = congest.Result
	// ShardStats reports per-shard occupancy and barrier wait time of the
	// sharded engine; see Service.Stats and the WithShards option.
	ShardStats = congest.ShardStats
	// ClusterEngineStats reports one remote shard engine's traffic in
	// cluster mode; see Service.Stats and the WithCluster option.
	ClusterEngineStats = wire.EngineStats
	// RSTOptions tunes the random-spanning-tree driver; see the
	// WithStartLength/WithWalksPerPhase/WithDeliverTree options.
	RSTOptions = spanning.Options
	// RSTResult is a sampled spanning tree plus its cost.
	RSTResult = spanning.Result
	// MixingOptions tunes the mixing-time estimator; see the
	// WithTrials/WithEps/WithMaxEll options.
	MixingOptions = mixing.Options
	// MixingEstimate is the decentralized mixing-time estimate.
	MixingEstimate = mixing.Estimate
	// FaultStats counts the injected faults charged during simulated runs
	// (messages dropped at crashed nodes or lossy links, deliveries
	// delayed on slow links, nodes down); part of every Cost.
	FaultStats = congest.FaultStats
	// FaultPlan is a deterministic fault-injection plan: crash-stop
	// failures, churn windows, lossy links and slow links, all derived
	// from the plan seed. Install with WithFaultPlan; build randomized
	// plans with RandomFaultPlan.
	FaultPlan = fault.Plan
	// FaultCrash is one crash-stop entry of a FaultPlan.
	FaultCrash = fault.Crash
	// FaultChurn is one down-window entry of a FaultPlan.
	FaultChurn = fault.Churn
	// FaultLinkDrop is one per-link loss-probability override.
	FaultLinkDrop = fault.LinkDrop
	// FaultLinkDelay is one per-link fixed-delay entry.
	FaultLinkDelay = fault.LinkDelay
	// ChaosSpec tunes RandomFaultPlan's fault mix.
	ChaosSpec = fault.Chaos
)

// None is the sentinel "no node" value.
const None = graph.None

// RandomFaultPlan samples a reproducible fault plan for g: crashes and
// churn windows at seeded random nodes and rounds, plus lossy and slow
// links, with the mix tuned by spec. Same (seed, graph, spec) — same
// plan. The chaos suite drives services through plans built here.
func RandomFaultPlan(seed uint64, g *Graph, spec ChaosSpec) *FaultPlan {
	return fault.RandomPlan(seed, g, spec)
}

// NewGraph returns an empty graph on n vertices; add edges with AddEdge /
// AddWeightedEdge.
func NewGraph(n int) *Graph { return graph.New(n) }

// DefaultParams returns the practical parameterization (λ = √(ℓD), η = 1).
func DefaultParams() Params { return core.DefaultParams() }

// DNP09Params returns the PODC 2009 baseline parameterization
// (Õ(ℓ^{2/3}D^{1/3}) rounds).
func DNP09Params(ell, diam int) Params { return core.DNP09Params(ell, diam) }

// Generators for the graph families used in the paper's setting. All
// randomized generators are deterministic in the seed and retry until the
// sample is connected.

// Path returns the path graph on n nodes.
func Path(n int) (*Graph, error) { return graph.Path(n) }

// Cycle returns the cycle on n >= 3 nodes.
func Cycle(n int) (*Graph, error) { return graph.Cycle(n) }

// Complete returns the complete graph K_n.
func Complete(n int) (*Graph, error) { return graph.Complete(n) }

// Star returns the star with center 0.
func Star(n int) (*Graph, error) { return graph.Star(n) }

// Grid returns the rows x cols grid.
func Grid(rows, cols int) (*Graph, error) { return graph.Grid(rows, cols) }

// Torus returns the rows x cols torus (dims >= 3).
func Torus(rows, cols int) (*Graph, error) { return graph.Torus(rows, cols) }

// Hypercube returns the dim-dimensional hypercube.
func Hypercube(dim int) (*Graph, error) { return graph.Hypercube(dim) }

// Candy returns a clique with a path tail — a diameter-vs-density knob.
func Candy(cliqueSize, pathLen int) (*Graph, error) { return graph.Candy(cliqueSize, pathLen) }

// Barbell returns two cliques joined by a path.
func Barbell(cliqueSize, pathLen int) (*Graph, error) { return graph.Barbell(cliqueSize, pathLen) }

// RandomRegular returns a connected random d-regular graph.
func RandomRegular(n, d int, seed uint64) (*Graph, error) {
	return graph.ConnectedRandomRegular(n, d, rng.New(seed), 1000)
}

// ErdosRenyi returns a connected G(n, p) sample.
func ErdosRenyi(n int, p float64, seed uint64) (*Graph, error) {
	return graph.ConnectedER(n, p, rng.New(seed), 1000)
}

// GeometricRandom returns a connected random geometric graph — the
// paper's ad-hoc-network model. Pass radius <= 0 for a radius just above
// the connectivity threshold.
func GeometricRandom(n int, radius float64, seed uint64) (*Graph, error) {
	if radius <= 0 {
		radius = graph.RGGThresholdRadius(n)
	}
	return graph.ConnectedRGG(n, radius, rng.New(seed), 1000)
}

// ValidateSpanningTree checks a parent array against g.
func ValidateSpanningTree(g *Graph, root NodeID, parent []NodeID) error {
	return spanning.ValidateTree(g, root, parent)
}

// Reference (centralized) quantities used for validation.

// WalkDistribution returns the exact t-step walk distribution from src.
func WalkDistribution(g *Graph, src NodeID, t int) ([]float64, error) {
	v, err := dist.WalkDist(g, src, t)
	return []float64(v), err
}

// MHWalkDistribution returns the exact t-step distribution of the
// Metropolis-Hastings walk with uniform target (enable sampling of it
// with Params.Metropolis).
func MHWalkDistribution(g *Graph, src NodeID, t int) ([]float64, error) {
	v, err := dist.MHWalkDist(g, src, t)
	return []float64(v), err
}

// StationaryDistribution returns π(v) = deg(v)/2m.
func StationaryDistribution(g *Graph) ([]float64, error) {
	v, err := dist.Stationary(g)
	return []float64(v), err
}

// ExactMixingTime returns τ^x(ε) computed by exact iteration.
func ExactMixingTime(g *Graph, x NodeID, eps float64, tMax int) (int, error) {
	return spectral.MixingTimeFrom(g, x, eps, tMax)
}

// SpectralGap returns 1 − λ₂ of the walk's transition matrix (dense
// eigensolver; small graphs).
func SpectralGap(g *Graph) (float64, error) { return spectral.SpectralGap(g) }

// EpsMix is the ε in the paper's mixing-time definition, 1/(2e).
const EpsMix = spectral.EpsMix
