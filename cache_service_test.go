package distwalk

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"distwalk/internal/cache"
)

// The tentpole contract: the cached path is provably bit-identical to a
// fresh execution. These tests run in the internal package so they can
// reach the cache's Gate test hook for deterministic singleflight
// interleavings; everything else goes through the public API.

func cacheTestPair(t *testing.T, opts ...Option) (fresh, cached *Service) {
	t.Helper()
	g, err := Torus(9, 9)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err = NewService(g, 42, opts...)
	if err != nil {
		t.Fatal(err)
	}
	cached, err = NewService(g, 42, append([]Option{WithResultCache(1 << 20)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		fresh.Close()
		cached.Close()
	})
	return fresh, cached
}

// TestCacheBitIdentityGoldens pins the acceptance criterion: for
// SingleRandomWalk, ManyRandomWalks and WalkTrace (plus the remaining
// entry points), a cache-miss result and a cache-hit result both
// deep-equal an execution on an uncached service — cost counters
// included.
func TestCacheBitIdentityGoldens(t *testing.T) {
	ctx := context.Background()
	fresh, cached := cacheTestPair(t)
	sources := []NodeID{0, 11, 22, 33}

	checks := []struct {
		name string
		run  func(s *Service, key uint64) (any, error)
	}{
		{"single", func(s *Service, key uint64) (any, error) {
			return s.SingleRandomWalk(ctx, key, 3, 500)
		}},
		{"naive", func(s *Service, key uint64) (any, error) {
			return s.NaiveWalk(ctx, key, 3, 200)
		}},
		{"many", func(s *Service, key uint64) (any, error) {
			return s.ManyRandomWalks(ctx, key, sources, 400)
		}},
		{"trace", func(s *Service, key uint64) (any, error) {
			w, tr, err := s.WalkTrace(ctx, key, 5, 400)
			if err != nil {
				return nil, err
			}
			return []any{w, tr}, nil
		}},
		{"rst", func(s *Service, key uint64) (any, error) {
			return s.RandomSpanningTree(ctx, key, 0)
		}},
		{"mixing", func(s *Service, key uint64) (any, error) {
			return s.EstimateMixingTime(ctx, key, 0, WithTrials(24))
		}},
	}
	for i, c := range checks {
		key := uint64(1000 + i)
		want, err := c.run(fresh, key)
		if err != nil {
			t.Fatalf("%s: fresh: %v", c.name, err)
		}
		miss, err := c.run(cached, key)
		if err != nil {
			t.Fatalf("%s: miss: %v", c.name, err)
		}
		hit, err := c.run(cached, key)
		if err != nil {
			t.Fatalf("%s: hit: %v", c.name, err)
		}
		if !reflect.DeepEqual(want, miss) {
			t.Errorf("%s: cache-miss result differs from a fresh execution", c.name)
		}
		if !reflect.DeepEqual(want, hit) {
			t.Errorf("%s: cache-hit result differs from a fresh execution", c.name)
		}
	}
	st := cached.Stats().Cache
	if st.Misses != int64(len(checks)) || st.Hits != int64(len(checks)) {
		t.Fatalf("cache stats = %+v, want %d misses and %d hits", st, len(checks), len(checks))
	}
	if st.BytesUsed <= 0 || st.HitBytes <= 0 {
		t.Fatalf("byte accounting not live: %+v", st)
	}
	if fs := fresh.Stats().Cache; fs != (CacheStats{}) {
		t.Fatalf("uncached service reported cache stats: %+v", fs)
	}
}

// TestCacheCoalescedWaiters is the singleflight acceptance test: k
// concurrent identical requests execute once, and ServiceStats shows
// exactly k−1 coalesced waiters. The cache's Gate hook holds the leader
// in flight until every waiter has attached, making the interleaving
// deterministic under -race.
func TestCacheCoalescedWaiters(t *testing.T) {
	ctx := context.Background()
	fresh, cached := cacheTestPair(t)
	want, err := fresh.SingleRandomWalk(ctx, 77, 10, 500)
	if err != nil {
		t.Fatal(err)
	}
	const k = 8
	release := make(chan struct{})
	cached.cache.Gate = func(cache.Key) { <-release }
	results := make(chan *WalkResult, k)
	errs := make(chan error, k)
	for i := 0; i < k; i++ {
		go func() {
			res, err := cached.SingleRandomWalk(ctx, 77, 10, 500)
			if err != nil {
				errs <- err
				return
			}
			results <- res
		}()
	}
	deadline := time.Now().Add(20 * time.Second)
	for cached.Stats().Cache.CoalescedWaiters < k-1 {
		select {
		case err := <-errs:
			t.Fatal(err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d waiters attached", cached.Stats().Cache.CoalescedWaiters, k-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	for i := 0; i < k; i++ {
		select {
		case err := <-errs:
			t.Fatal(err)
		case res := <-results:
			if !reflect.DeepEqual(want, res) {
				t.Fatal("coalesced result differs from a fresh execution")
			}
		}
	}
	st := cached.Stats().Cache
	if st.Misses != 1 || st.Hits != 0 || st.CoalescedWaiters != k-1 {
		t.Fatalf("stats = %+v, want exactly 1 execution and %d coalesced waiters", st, k-1)
	}
}

func TestCachedSubmitSharesSyncEntries(t *testing.T) {
	ctx := context.Background()
	fresh, cached := cacheTestPair(t)

	want, err := fresh.SingleRandomWalk(ctx, 7, 4, 500)
	if err != nil {
		t.Fatal(err)
	}
	// Populate via the sync path, then hit via an async submit.
	if _, err := cached.SingleRandomWalk(ctx, 7, 4, 500); err != nil {
		t.Fatal(err)
	}
	h, err := cached.SubmitWalk(ctx, 7, 4, 500)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("submitted walk's cache hit differs from a fresh execution")
	}
	if b := h.Batch(); b.Reason != FlushCached || b.Size != 1 {
		t.Fatalf("batch info = %+v, want a size-1 FlushCached serve", b)
	}
	if b := h.Batch(); !reflect.DeepEqual(b.Cost, want.Cost) {
		t.Fatalf("cached serve reported cost %+v, want the execution's %+v", b.Cost, want.Cost)
	}

	// And the reverse: an async leader's stored result serves sync hits.
	h2, err := cached.SubmitWalkTrace(ctx, 8, 9, 400)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Result(); err != nil {
		t.Fatal(err)
	}
	preHits := cached.Stats().Cache.Hits
	w2, tr2, err := cached.WalkTrace(ctx, 8, 9, 400)
	if err != nil {
		t.Fatal(err)
	}
	fw, ftr, err := fresh.WalkTrace(ctx, 8, 9, 400)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fw, w2) || !reflect.DeepEqual(ftr, tr2) {
		t.Fatal("sync WalkTrace hit on an async-stored entry differs from fresh")
	}
	if cached.Stats().Cache.Hits != preHits+1 {
		t.Fatal("sync WalkTrace did not hit the async-stored entry")
	}
}

// TestCacheMutationIsolation proves frozen entries + copy-on-return:
// callers mutating what they got must not corrupt future hits.
func TestCacheMutationIsolation(t *testing.T) {
	ctx := context.Background()
	fresh, cached := cacheTestPair(t)
	want, err := fresh.ManyRandomWalks(ctx, 1, []NodeID{0, 11, 22}, 400)
	if err != nil {
		t.Fatal(err)
	}
	first, err := cached.ManyRandomWalks(ctx, 1, []NodeID{0, 11, 22}, 400)
	if err != nil {
		t.Fatal(err)
	}
	// Vandalize everything reachable from the miss return.
	for i := range first.Destinations {
		first.Destinations[i] = -7
	}
	for _, w := range first.Walks {
		w.Destination = -7
		for j := range w.Segments {
			w.Segments[j].Start = -7
		}
	}
	first.Cost.Rounds = -7
	second, err := cached.ManyRandomWalks(ctx, 1, []NodeID{0, 11, 22}, 400)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, second) {
		t.Fatal("mutating a returned result corrupted the cached entry")
	}

	wWant, trWant, err := fresh.WalkTrace(ctx, 2, 5, 400)
	if err != nil {
		t.Fatal(err)
	}
	w1, tr1, err := cached.WalkTrace(ctx, 2, 5, 400)
	if err != nil {
		t.Fatal(err)
	}
	w1.Segments = nil
	for i := range tr1.Positions {
		for j := range tr1.Positions[i] {
			tr1.Positions[i][j] = -7
		}
	}
	tr1.FirstVisitTime[0] = -7
	w2, tr2, err := cached.WalkTrace(ctx, 2, 5, 400)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wWant, w2) || !reflect.DeepEqual(trWant, tr2) {
		t.Fatal("mutating a returned trace corrupted the cached entry")
	}
}

func TestInvalidateCache(t *testing.T) {
	ctx := context.Background()
	fresh, cached := cacheTestPair(t)
	if err := fresh.InvalidateCache(); !errors.Is(err, ErrCacheDisabled) {
		t.Fatalf("uncached InvalidateCache = %v, want ErrCacheDisabled", err)
	}
	want, err := fresh.SingleRandomWalk(ctx, 1, 0, 500)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cached.SingleRandomWalk(ctx, 1, 0, 500); err != nil {
		t.Fatal(err)
	}
	if err := cached.InvalidateCache(); err != nil {
		t.Fatal(err)
	}
	st := cached.Stats().Cache
	if st.BytesUsed != 0 || st.Evictions == 0 {
		t.Fatalf("stats after invalidate = %+v, want empty store", st)
	}
	got, err := cached.SingleRandomWalk(ctx, 1, 0, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("post-invalidate re-execution differs from fresh")
	}
	st = cached.Stats().Cache
	if st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("stats = %+v: the generation bump must force a re-execution", st)
	}
}

// TestCacheAdmissionPolicy: a CacheMinRounds policy above every
// execution's cost keeps the store empty — every identical request
// re-executes — while results stay correct.
func TestCacheAdmissionPolicy(t *testing.T) {
	ctx := context.Background()
	g, err := Torus(9, 9)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(g, 42, WithResultCache(1<<20), WithCacheAdmission(CacheMinRounds(1<<40)))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	a, err := svc.SingleRandomWalk(ctx, 1, 0, 500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.SingleRandomWalk(ctx, 1, 0, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("per-key determinism broke without admission")
	}
	st := svc.Stats().Cache
	if st.Hits != 0 || st.Misses != 2 || st.BytesUsed != 0 {
		t.Fatalf("stats = %+v: MinRounds(1<<40) must store nothing", st)
	}
}

// TestCachePartialResultsNotStored: a ManyRandomWalks result with
// casualties (Failed > 0) is returned but never admitted — the next
// identical request re-executes (a retry deserves a chance to do better
// than a cached casualty list).
func TestCachePartialResultsNotStored(t *testing.T) {
	ctx := context.Background()
	g, err := Torus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	plan := &FaultPlan{Churn: []FaultChurn{{Node: 27, From: 30, To: 400}}}
	svc, err := NewService(g, 42, WithFaultPlan(plan), WithPartialResults(), WithResultCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	sources := make([]NodeID, 8)
	for i := range sources {
		sources[i] = NodeID(i * 9)
	}
	for key := uint64(1); key <= 20; key++ {
		res, err := svc.ManyRandomWalks(ctx, key, sources, 600)
		if err != nil || res.Failed == 0 {
			continue
		}
		before := svc.Stats().Cache
		again, err := svc.ManyRandomWalks(ctx, key, sources, 600)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, again) {
			t.Fatalf("key %d: partial result not deterministic", key)
		}
		after := svc.Stats().Cache
		if after.Hits != before.Hits || after.Misses != before.Misses+1 {
			t.Fatalf("key %d: partial result was served from the store (stats %+v -> %+v)",
				key, before, after)
		}
		return
	}
	t.Skip("fault plan produced no partial batch in 20 keys")
}

// TestCacheConcurrentStress drives concurrent hit/miss/coalesce traffic
// with mutating callers under -race: returned results must never alias
// the store or each other.
func TestCacheConcurrentStress(t *testing.T) {
	ctx := context.Background()
	fresh, cached := cacheTestPair(t)
	const keys = 6
	want := make([]*WalkResult, keys)
	for k := range want {
		w, err := fresh.SingleRandomWalk(ctx, uint64(k), NodeID(k*13%81), 400)
		if err != nil {
			t.Fatal(err)
		}
		want[k] = w
	}
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				k := (g + i) % keys
				var got *WalkResult
				var err error
				if (g+i)%3 == 0 {
					var h *WalkHandle
					h, err = cached.SubmitWalk(ctx, uint64(k), NodeID(k*13%81), 400)
					if err == nil {
						got, err = h.Result()
					}
				} else {
					got, err = cached.SingleRandomWalk(ctx, uint64(k), NodeID(k*13%81), 400)
				}
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(want[k], got) {
					t.Errorf("key %d: concurrent cached result differs", k)
					return
				}
				// Mutate after the check — the next reader must not see it.
				got.Destination = -1
				for j := range got.Segments {
					got.Segments[j].End = -1
				}
			}
		}(g)
	}
	wg.Wait()
	st := cached.Stats().Cache
	if st.Hits+st.Misses+st.CoalescedWaiters != 12*10 {
		t.Fatalf("outcomes %d+%d+%d do not sum to 120 lookups",
			st.Hits, st.Misses, st.CoalescedWaiters)
	}
}
