package distwalk_test

import (
	"context"
	"math"
	"testing"

	"distwalk"
)

// These tests exercise the public facade end to end, the way a downstream
// user would.

func TestQuickstartFlow(t *testing.T) {
	g, err := distwalk.Torus(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := distwalk.NewService(g, 42)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	const ell = 10000
	res, err := svc.SingleRandomWalk(context.Background(), 1, 0, ell)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Rounds >= ell {
		t.Fatalf("fast walk took %d rounds for ℓ=%d — not sublinear", res.Cost.Rounds, ell)
	}
	if res.Destination < 0 || int(res.Destination) >= g.N() {
		t.Fatalf("bad destination %d", res.Destination)
	}
}

func TestFacadeGenerators(t *testing.T) {
	cases := []struct {
		name string
		f    func() (*distwalk.Graph, error)
	}{
		{"path", func() (*distwalk.Graph, error) { return distwalk.Path(5) }},
		{"cycle", func() (*distwalk.Graph, error) { return distwalk.Cycle(5) }},
		{"complete", func() (*distwalk.Graph, error) { return distwalk.Complete(5) }},
		{"star", func() (*distwalk.Graph, error) { return distwalk.Star(5) }},
		{"grid", func() (*distwalk.Graph, error) { return distwalk.Grid(3, 4) }},
		{"torus", func() (*distwalk.Graph, error) { return distwalk.Torus(4, 4) }},
		{"hypercube", func() (*distwalk.Graph, error) { return distwalk.Hypercube(4) }},
		{"candy", func() (*distwalk.Graph, error) { return distwalk.Candy(4, 3) }},
		{"barbell", func() (*distwalk.Graph, error) { return distwalk.Barbell(4, 2) }},
		{"regular", func() (*distwalk.Graph, error) { return distwalk.RandomRegular(16, 3, 1) }},
		{"er", func() (*distwalk.Graph, error) { return distwalk.ErdosRenyi(24, 0.2, 1) }},
		{"rgg", func() (*distwalk.Graph, error) { return distwalk.GeometricRandom(48, 0, 1) }},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			g, err := tt.f()
			if err != nil {
				t.Fatal(err)
			}
			if g.N() == 0 {
				t.Fatal("empty graph")
			}
			if g.N() > 1 && !g.Connected() {
				t.Fatal("disconnected sample from facade generator")
			}
		})
	}
}

func TestFacadeSpanningTree(t *testing.T) {
	g, err := distwalk.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := distwalk.NewService(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	res, err := svc.RandomSpanningTree(context.Background(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := distwalk.ValidateSpanningTree(g, 0, res.Parent); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeMixingTime(t *testing.T) {
	g, err := distwalk.RandomRegular(36, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := distwalk.NewService(g, 9)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	est, err := svc.EstimateMixingTime(context.Background(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := distwalk.ExactMixingTime(g, 0, distwalk.EpsMix, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if est.Tau < 1 || est.Tau > 50*exact+50 {
		t.Fatalf("estimate τ̃=%d wildly off exact %d", est.Tau, exact)
	}
}

func TestFacadeReferenceQuantities(t *testing.T) {
	g, err := distwalk.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := distwalk.StationaryDistribution(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pi {
		if math.Abs(p-0.2) > 1e-12 {
			t.Fatalf("K5 stationary %v", pi)
		}
	}
	d, err := distwalk.WalkDistribution(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != 0 || math.Abs(d[1]-0.25) > 1e-12 {
		t.Fatalf("K5 one-step %v", d)
	}
	gap, err := distwalk.SpectralGap(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gap-1.25) > 1e-9 {
		t.Fatalf("K5 gap = %v, want 1.25", gap)
	}
}
