package distwalk

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"sync"
)

// Observability helpers: a Service's counters (ServiceStats — scheduler,
// shard occupancy, retry activity, cluster engine traffic) exported over
// HTTP or expvar. Both are opt-in; a Service publishes nothing by
// default. The server-side counterpart is distwalkd's -debug-addr flag,
// which exports the engine's wire.Metrics the same way.

// StatsHandler returns an http.Handler that serves the service's current
// ServiceStats snapshot as JSON. Mount it wherever the process exposes
// debug endpoints:
//
//	mux.Handle("/debug/distwalk", svc.StatsHandler())
func (s *Service) StatsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s.Stats()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// expvarMu serializes the duplicate check against the publish below:
// expvar names are process-global, and without the lock two concurrent
// PublishExpvar calls could both pass the Get check and the second
// Publish would panic.
var expvarMu sync.Mutex

// PublishExpvar publishes the service's stats as the expvar name, so they
// appear under /debug/vars next to the runtime's. Unlike expvar.Publish
// it reports a duplicate name as an error instead of panicking (expvar
// names are process-global and a second Service — or a second call — may
// collide). Safe for concurrent use.
func (s *Service) PublishExpvar(name string) error {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return fmt.Errorf("distwalk: expvar %q already published", name)
	}
	expvar.Publish(name, expvar.Func(func() any { return s.Stats() }))
	return nil
}
