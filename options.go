package distwalk

import (
	"runtime"
	"time"

	"distwalk/internal/core"
	"distwalk/internal/fault"
	"distwalk/internal/sched"
)

// config is the resolved tuning of a Service (and, per request, of one
// call). It layers the pre-existing option structs — core.Params,
// spanning.Options, mixing.Options — under one functional-options surface,
// so the structs remain the single source of truth for semantics.
type config struct {
	params Params
	rst    RSTOptions
	mix    MixingOptions
	// workers is the size of the worker pool (construction-time only).
	workers int
	// shards is the per-worker network shard count (construction-time
	// only): 1 = sequential engine, -1 = auto (GOMAXPROCS at build).
	shards int
	// maxRounds caps the simulated rounds of every engine run within a
	// request (0 = the engine default of 50,000,000).
	maxRounds int
	// batchOn enables the request-coalescing scheduler, tuned by batch
	// (construction-time only; see WithBatching).
	batchOn bool
	batch   sched.Config
	// retries is the number of re-executions after a retryable failure
	// (0 = fail fast), backoff the base of their exponential wait.
	retries int
	backoff time.Duration
	// partial switches ManyRandomWalks to per-walk failure isolation.
	partial bool
	// staleAbort fails requests straddling a topology mutation with
	// ErrStaleGeneration instead of pinning them to their admission
	// epoch (see WithStaleAbort / WithEpochPinning).
	staleAbort bool
	// fplan is the deterministic fault plan installed on every worker
	// network (construction-time only; see WithFaultPlan).
	fplan *fault.Plan
	// cacheBytes enables the deterministic result cache with this byte
	// capacity (construction-time only; see WithResultCache). 0 = no cache.
	cacheBytes int64
	// cacheAdmit is the optional cache admission policy (construction-time
	// only; see WithCacheAdmission).
	cacheAdmit CacheAdmission
	// cluster is the distwalkd engine address list (construction-time
	// only; see WithCluster). Empty = in-process execution.
	cluster []string
	// clusterFallback re-executes a request on in-process shards when its
	// cluster run is lost (see WithClusterFallback).
	clusterFallback bool
	// clusterRound is the per-exchange engine I/O deadline (0 = the 30s
	// default; see WithClusterRoundTimeout). Per-request overridable.
	clusterRound time.Duration
	// clusterHandshake bounds dial + handshake of every engine session,
	// reconnects included (construction-time only; 0 = the wire default).
	clusterHandshake time.Duration
	// clusterHeartbeat is the idle heartbeat interval (construction-time
	// only; 0 = the 10s default, negative = disabled).
	clusterHeartbeat time.Duration
	// clusterBackoff/clusterBackoffMax bound the reconnect backoff
	// (construction-time only; 0 = wire defaults).
	clusterBackoff    time.Duration
	clusterBackoffMax time.Duration
}

func defaultConfig() config {
	return config{
		params:  core.DefaultParams(),
		workers: runtime.GOMAXPROCS(0),
		shards:  1,
	}
}

// Option configures a Service at construction and/or a single request at
// the call site. Options come in two scopes:
//
//   - Per-request options (walk parameterization, budgets, retries,
//     partial results, the epoch-pinning mode, cluster fallback and
//     round timeout) may be passed to NewService — where they set the
//     service default — or to any request method, where they override
//     the default for that request only.
//
//   - Construction-only options shape state that exists once per
//     service: the worker pool (WithWorkers), the shard layout
//     (WithShards), cluster membership and its session policies
//     (WithCluster, WithClusterHandshakeTimeout, WithClusterHeartbeat,
//     WithClusterBackoff), the batching scheduler (WithBatching,
//     WithBatchQueueLimit), the result cache (WithResultCache,
//     WithCacheAdmission) and the fault plan (WithFaultPlan). Passing
//     one to a request method fails the call with a *OptionScopeError
//     matching ErrOptionScope — there is no per-request meaning it
//     could honor. Each option's doc comment states its scope.
type Option struct {
	name     string
	ctorOnly bool
	f        func(*config)
}

// newOption builds a per-request (and construction) option.
func newOption(name string, f func(*config)) Option {
	return Option{name: name, f: f}
}

// ctorOption builds a construction-only option; applyRequest rejects it.
func ctorOption(name string, f func(*config)) Option {
	return Option{name: name, ctorOnly: true, f: f}
}

// apply applies opts at construction scope: every option is honored.
func (c *config) apply(opts []Option) {
	for _, o := range opts {
		if o.f != nil {
			o.f(c)
		}
	}
}

// applyRequest applies opts at request scope, rejecting construction-only
// options with a typed *OptionScopeError naming the offender.
func (c *config) applyRequest(opts []Option) error {
	for _, o := range opts {
		if o.ctorOnly {
			return &OptionScopeError{Option: o.name}
		}
		if o.f != nil {
			o.f(c)
		}
	}
	return nil
}

// --- Walk parameterization (core.Params) ---

// WithParams replaces the whole walk parameterization. Use the finer
// options below for single-knob changes. Per request or service default.
func WithParams(p Params) Option {
	return newOption("WithParams", func(c *config) { c.params = p })
}

// WithLambda pins the short-walk base length λ directly (tests/ablations).
// Per request or service default.
func WithLambda(lambda int) Option {
	return newOption("WithLambda", func(c *config) { c.params.Lambda = lambda })
}

// WithLambdaC scales the practical short-walk length λ = ⌈c·√(ℓD)⌉.
// Per request or service default.
func WithLambdaC(cc float64) Option {
	return newOption("WithLambdaC", func(c *config) { c.params.LambdaC = cc })
}

// WithEta sets η, the Phase 1 short walks prepared per unit of degree.
// Per request or service default.
func WithEta(eta int) Option {
	return newOption("WithEta", func(c *config) { c.params.Eta = eta })
}

// WithTheory applies the paper's constants verbatim
// (λ = 24·√(ℓD)·(log₂ n)³, η = 1). Per request or service default.
func WithTheory() Option {
	return newOption("WithTheory", func(c *config) { c.params.Theory = true })
}

// WithMetropolis samples the Metropolis-Hastings walk with uniform target
// distribution instead of the simple walk. Per request or service default.
func WithMetropolis() Option {
	return newOption("WithMetropolis", func(c *config) { c.params.Metropolis = true })
}

// WithDNP09 applies the PODC 2009 baseline parameterization
// (Õ(ℓ^{2/3}D^{1/3}) rounds) for the given walk length and diameter.
// Per request or service default.
func WithDNP09(ell, diam int) Option {
	return newOption("WithDNP09", func(c *config) { c.params = core.DNP09Params(ell, diam) })
}

// --- Spanning-tree driver (spanning.Options) ---

// WithRSTOptions replaces the whole random-spanning-tree tuning.
// Per request or service default.
func WithRSTOptions(o RSTOptions) Option {
	return newOption("WithRSTOptions", func(c *config) { c.rst = o })
}

// WithStartLength sets the initial walk length ℓ of the RST cover search.
// Per request or service default.
func WithStartLength(ell int) Option {
	return newOption("WithStartLength", func(c *config) { c.rst.StartLength = ell })
}

// WithWalksPerPhase sets the number of candidate walks per RST doubling
// phase (default ⌈log₂ n⌉). Per request or service default.
func WithWalksPerPhase(k int) Option {
	return newOption("WithWalksPerPhase", func(c *config) { c.rst.WalksPerPhase = k })
}

// WithDeliverTree additionally upcasts the sampled tree's edges to the
// root (the paper's optional O(n) delivery). Per request or service
// default.
func WithDeliverTree() Option {
	return newOption("WithDeliverTree", func(c *config) { c.rst.Deliver = true })
}

// --- Mixing-time estimator (mixing.Options) ---

// WithMixingOptions replaces the whole mixing-estimator tuning.
// Per request or service default.
func WithMixingOptions(o MixingOptions) Option {
	return newOption("WithMixingOptions", func(c *config) { c.mix = o })
}

// WithTrials sets K, the walks sampled per tested length in the
// mixing-time estimator (default ⌈6·√n⌉). Per request or service default.
func WithTrials(k int) Option {
	return newOption("WithTrials", func(c *config) { c.mix.Samples = k })
}

// WithEps sets the target ℓ₁ closeness of the mixing test (default 1/2e,
// the paper's τ_mix definition). Per request or service default.
func WithEps(eps float64) Option {
	return newOption("WithEps", func(c *config) { c.mix.Eps = eps })
}

// WithMaxEll caps the mixing estimator's doubling search. Per request or
// service default.
func WithMaxEll(ell int) Option {
	return newOption("WithMaxEll", func(c *config) { c.mix.MaxEll = ell })
}

// --- Service-level knobs ---

// WithWorkers sets the worker-pool size, i.e. how many requests execute
// concurrently (default GOMAXPROCS). Construction-only: the pool is
// built once; per-request use fails with ErrOptionScope.
func WithWorkers(n int) Option {
	return ctorOption("WithWorkers", func(c *config) {
		if n >= 1 {
			c.workers = n
		}
	})
}

// WithShards partitions every worker's simulated network into s parallel
// shards: each simulated round's per-node processing runs on s goroutines
// (degree-balanced contiguous node ranges) with a deterministic merge at
// the round barrier, so results, walk outputs and simulated cost counters
// stay bit-identical to the sequential engine while wall-clock time for
// large graphs drops with cores. s <= 0 selects auto (GOMAXPROCS at
// construction); s is clamped to the graph size. Construction-only:
// per-request use fails with ErrOptionScope. Sharding helps when
// per-round work is large (big graphs, wide batches); for small graphs
// the barrier overhead dominates and the default s = 1 is faster.
// Compose with WithWorkers deliberately: workers multiply throughput
// across requests, shards cut the latency of one request, and
// workers*shards goroutines contend for the same cores.
func WithShards(s int) Option {
	return ctorOption("WithShards", func(c *config) {
		if s <= 0 {
			c.shards = -1
			return
		}
		c.shards = s
	})
}

// WithCluster runs the service's simulated networks in cluster mode: the
// transport layer (edge queues, fault charging, delivery) of shard i runs
// inside the distwalkd process at addrs[i], reached over the
// internal/wire protocol, while the protocol layer stays in this process.
// Execution is bit-identical to WithShards(len(addrs)) — same results,
// same cost counters, same fault census, per request key — the cluster
// identity suite pins exactly that. Each pool worker holds one session
// per engine, so a service runs Workers()×len(addrs) sessions; Close
// tears them all down. Construction-only: per-request use fails with
// ErrOptionScope. Cluster mode excludes WithShards (the in-process shard
// layout is moot; it is forced to 1) and requires len(addrs) <= n.
// NewService fails with ErrClusterConfig on a bad engine list and with a
// wire-typed error (ErrClusterEngine-matching on session failures) when
// an engine is unreachable or rejects the handshake.
func WithCluster(addrs ...string) Option {
	return ctorOption("WithCluster", func(c *config) {
		c.cluster = append([]string(nil), addrs...)
	})
}

// WithClusterFallback enables graceful degradation in cluster mode: when
// a remote engine is lost mid-request (timeout, crash, missed heartbeat,
// reconnect refused), the request transparently re-executes on in-process
// shards — the WithShards(len(addrs)) path — with the same derived seed.
// Sharded execution is bit-identical to cluster execution per (graph,
// service seed, key), so a failed-over result is indistinguishable from a
// fault-free cluster run; Stats().Cluster.Failovers counts how often it
// happened. Without this option a lost engine fails the request with a
// typed ErrClusterEngine error. Composes with WithRetry unchanged: the
// failover happens inside the attempt, before retry salting would kick
// in. Applies per request or as a service default.
func WithClusterFallback() Option {
	return newOption("WithClusterFallback", func(c *config) { c.clusterFallback = true })
}

// WithClusterRoundTimeout sets the per-exchange I/O deadline of cluster
// mode: every Push/Deliver/RunResult round trip with every engine must
// complete within d, or the run fails with ErrEngineTimeout (wrapped in
// ErrClusterEngine). Default 30s. The effective deadline tightens to the
// request context's remaining budget when that is shorter, with a 100ms
// floor so a nearly-expired context still gets one meaningful exchange.
// Applies per request or as a service default.
func WithClusterRoundTimeout(d time.Duration) Option {
	return newOption("WithClusterRoundTimeout", func(c *config) {
		if d > 0 {
			c.clusterRound = d
		}
	})
}

// WithClusterHandshakeTimeout bounds the TCP dial plus Hello/Welcome
// exchange of every engine session — the initial W×S dials and every
// supervisor reconnect (default: the wire package's 30s).
// Construction-only: per-request use fails with ErrOptionScope.
func WithClusterHandshakeTimeout(d time.Duration) Option {
	return ctorOption("WithClusterHandshakeTimeout", func(c *config) {
		if d > 0 {
			c.clusterHandshake = d
		}
	})
}

// WithClusterHeartbeat sets the idle heartbeat interval of cluster
// sessions: while no run is in flight, each session pings its engine
// every d and treats a missed reply as a lost engine (counted in
// Stats().Cluster.HeartbeatMisses, and repaired by reconnect on the next
// request). Default 10s; d <= 0 disables heartbeats. Construction-only:
// per-request use fails with ErrOptionScope.
func WithClusterHeartbeat(d time.Duration) Option {
	return ctorOption("WithClusterHeartbeat", func(c *config) {
		if d <= 0 {
			c.clusterHeartbeat = -1
			return
		}
		c.clusterHeartbeat = d
	})
}

// WithClusterBackoff bounds the engine reconnect backoff: the k-th
// consecutive failed redial of an engine waits min(max, base << (k-1)),
// jittered, before the next attempt (defaults 100ms / 5s). The first
// redial after a loss is immediate; only dial failures back off.
// Construction-only: per-request use fails with ErrOptionScope.
func WithClusterBackoff(base, max time.Duration) Option {
	return ctorOption("WithClusterBackoff", func(c *config) {
		if base > 0 {
			c.clusterBackoff = base
		}
		if max > 0 {
			c.clusterBackoffMax = max
		}
	})
}

// WithMaxRounds caps the simulated rounds of every engine run performed
// for a request; runs that exceed it fail with ErrBudgetExceeded.
// Per request or service default.
func WithMaxRounds(r int) Option {
	return newOption("WithMaxRounds", func(c *config) {
		if r >= 1 {
			c.maxRounds = r
		}
	})
}

// WithBatching enables the request-coalescing scheduler: concurrent
// SubmitWalk/SubmitWalkTrace requests with compatible config coalesce
// into shared MANY-RANDOM-WALKS executions, amortizing the batch cost
// Õ(min(√(kℓD)+k, k+ℓ)) across its k walks. A batch flushes when it
// reaches maxBatch members or maxDelay after its first member arrived,
// whichever comes first; non-positive values keep the defaults (8
// members, 2ms). Batched results are deterministic per batch composition
// — see internal/sched for the contract; the synchronous entry points
// keep their per-key determinism regardless. Construction-only:
// per-request use fails with ErrOptionScope.
func WithBatching(maxBatch int, maxDelay time.Duration) Option {
	return ctorOption("WithBatching", func(c *config) {
		c.batchOn = true
		if maxBatch >= 1 {
			c.batch.MaxBatch = maxBatch
		}
		if maxDelay > 0 {
			c.batch.MaxDelay = maxDelay
		}
	})
}

// WithResultCache equips the service with the deterministic result cache
// (internal/cache): a sharded, byte-accounted LRU over completed request
// results, keyed by a canonical digest of every result-determining input.
// Because each request is a pure function of (topology generation, service
// seed, request key, parameterization, budgets), a hit is bit-identical
// to a fresh execution — cost counters included — and entries never
// expire; invalidation is Service.InvalidateCache or any ApplyMutations.
// Concurrent identical requests coalesce: one executes, the rest attach
// to it (ServiceStats.Cache.CoalescedWaiters), including async Submit
// handles. bytes is the total capacity; values below 1 are ignored (no
// cache). Construction-only: per-request use fails with ErrOptionScope.
func WithResultCache(bytes int64) Option {
	return ctorOption("WithResultCache", func(c *config) {
		if bytes >= 1 {
			c.cacheBytes = bytes
		}
	})
}

// WithCacheAdmission installs an admission policy on the result cache:
// only successful results the policy accepts are stored (e.g.
// CacheMinRounds keeps the expensive ones). Policies never see failed,
// partial, or batched-composition results — those are never offered.
// No-op without WithResultCache. Construction-only: per-request use
// fails with ErrOptionScope.
func WithCacheAdmission(policy CacheAdmission) Option {
	return ctorOption("WithCacheAdmission", func(c *config) { c.cacheAdmit = policy })
}

// WithRetry sets how many times a failed request is re-executed before
// its error is returned (default 0: fail fast). Only retryable failures
// re-execute — see Retryable: typed fault errors (ErrNodeCrashed,
// ErrMessageLost), transient scheduling rejections (ErrQueueFull,
// ErrBatchAborted) and stale-generation aborts (ErrStaleGeneration).
// Each retry runs with a fresh seed derived from (service seed, request
// key, attempt number), so a walk that died in a crashed or lossy region
// re-randomizes deterministically: the result of (key, attempt) is
// reproducible, and attempt 0 is bit-identical to a service without
// retries. A stale-generation retry is the exception to the salting: it
// re-admits on the new topology with the original attempt seed, so the
// retried request is bit-identical to one freshly submitted after the
// mutation. Context deadlines are honored between attempts (see
// WithBackoff). Applies per request or as a service default.
func WithRetry(max int) Option {
	return newOption("WithRetry", func(c *config) {
		if max >= 0 {
			c.retries = max
		}
	})
}

// WithBackoff sets the base wait before retries: the r-th retry waits
// base << (r-1), aborting early (with the context error) if the request
// context expires first. Default 0: retries run back to back — the
// "network" is simulated, so waiting is only useful when callers want to
// rate-limit recovery work. Per request or service default.
func WithBackoff(base time.Duration) Option {
	return newOption("WithBackoff", func(c *config) {
		if base >= 0 {
			c.backoff = base
		}
	})
}

// WithPartialResults switches ManyRandomWalks to per-walk failure
// isolation: walks killed by injected faults no longer fail the whole
// request; survivors complete and ManyResult.Errs reports the casualties
// (Errs[i] non-nil, Destinations[i] == None). Shared-phase failures
// (BFS tree, Phase 1, cancellation) still fail the request. Per-walk
// errors do not trigger WithRetry — the request itself succeeded.
// Per request or service default.
func WithPartialResults() Option {
	return newOption("WithPartialResults", func(c *config) { c.partial = true })
}

// WithEpochPinning makes requests that straddle an ApplyMutations (or
// InvalidateCache) complete against the topology generation they
// admitted under — the default. The pre-mutation graph is immutable and
// stays alive as long as pinned requests reference it, so results are
// exactly those of a service never mutated; they are simply not cached
// (the store would be stale on arrival). Applies per request or as a
// service default; the explicit option exists to override a service
// built with WithStaleAbort.
func WithEpochPinning() Option {
	return newOption("WithEpochPinning", func(c *config) { c.staleAbort = false })
}

// WithStaleAbort makes requests that straddle a topology mutation fail
// fast with an ErrStaleGeneration-matching *StaleGenerationError instead
// of completing on the superseded topology: queued batch members are
// evicted immediately and in-flight executions are cancelled at the next
// engine round. Combine with WithRetry to re-execute transparently on
// the new topology — the stale retry neither consumes salting nor
// changes the result a fresh post-mutation request would compute.
// Applies per request or as a service default.
func WithStaleAbort() Option {
	return newOption("WithStaleAbort", func(c *config) { c.staleAbort = true })
}

// WithFaultPlan installs a deterministic fault plan on every worker's
// simulated network: crash-stop failures, churn windows, lossy and slow
// links, all derived from the plan's seed (see FaultPlan and
// RandomFaultPlan). Same (plan, graph, request key) — same faults, same
// result, at any shard count. Construction-only: per-request use fails
// with ErrOptionScope. NewService fails with ErrBadFault if the plan is
// invalid for the graph, and ApplyMutations rejects mutations that would
// invalidate the installed plan (removing a faulted link).
func WithFaultPlan(p *FaultPlan) Option {
	return ctorOption("WithFaultPlan", func(c *config) { c.fplan = p })
}

// WithBatchQueueLimit bounds each batch admission queue (default 4x the
// batch size). When executions cannot keep up and a queue is full,
// SubmitWalk fails fast with ErrQueueFull instead of queueing
// unboundedly. A limit below the batch size is honored: batches then cap
// at the limit and flush on the delay window. Construction-only:
// per-request use fails with ErrOptionScope.
func WithBatchQueueLimit(n int) Option {
	return ctorOption("WithBatchQueueLimit", func(c *config) {
		if n >= 1 {
			c.batch.QueueLimit = n
		}
	})
}
