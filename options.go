package distwalk

import (
	"runtime"
	"time"

	"distwalk/internal/core"
	"distwalk/internal/fault"
	"distwalk/internal/sched"
)

// config is the resolved tuning of a Service (and, per request, of one
// call). It layers the pre-existing option structs — core.Params,
// spanning.Options, mixing.Options — under one functional-options surface,
// so the structs remain the single source of truth for semantics.
type config struct {
	params Params
	rst    RSTOptions
	mix    MixingOptions
	// workers is the size of the worker pool (construction-time only).
	workers int
	// shards is the per-worker network shard count (construction-time
	// only): 1 = sequential engine, -1 = auto (GOMAXPROCS at build).
	shards int
	// maxRounds caps the simulated rounds of every engine run within a
	// request (0 = the engine default of 50,000,000).
	maxRounds int
	// batchOn enables the request-coalescing scheduler, tuned by batch
	// (construction-time only; see WithBatching).
	batchOn bool
	batch   sched.Config
	// retries is the number of re-executions after a retryable failure
	// (0 = fail fast), backoff the base of their exponential wait.
	retries int
	backoff time.Duration
	// partial switches ManyRandomWalks to per-walk failure isolation.
	partial bool
	// fplan is the deterministic fault plan installed on every worker
	// network (construction-time only; see WithFaultPlan).
	fplan *fault.Plan
	// cacheBytes enables the deterministic result cache with this byte
	// capacity (construction-time only; see WithResultCache). 0 = no cache.
	cacheBytes int64
	// cacheAdmit is the optional cache admission policy (construction-time
	// only; see WithCacheAdmission).
	cacheAdmit CacheAdmission
	// cluster is the distwalkd engine address list (construction-time
	// only; see WithCluster). Empty = in-process execution.
	cluster []string
	// clusterFallback re-executes a request on in-process shards when its
	// cluster run is lost (see WithClusterFallback).
	clusterFallback bool
	// clusterRound is the per-exchange engine I/O deadline (0 = the 30s
	// default; see WithClusterRoundTimeout). Per-request overridable.
	clusterRound time.Duration
	// clusterHandshake bounds dial + handshake of every engine session,
	// reconnects included (construction-time only; 0 = the wire default).
	clusterHandshake time.Duration
	// clusterHeartbeat is the idle heartbeat interval (construction-time
	// only; 0 = the 10s default, negative = disabled).
	clusterHeartbeat time.Duration
	// clusterBackoff/clusterBackoffMax bound the reconnect backoff
	// (construction-time only; 0 = wire defaults).
	clusterBackoff    time.Duration
	clusterBackoffMax time.Duration
}

func defaultConfig() config {
	return config{
		params:  core.DefaultParams(),
		workers: runtime.GOMAXPROCS(0),
		shards:  1,
	}
}

// Option configures a Service at construction and/or a single request at
// the call site: NewService's options set the service defaults, and every
// request method accepts further options that override them for that
// request only.
type Option func(*config)

func (c *config) apply(opts []Option) {
	for _, o := range opts {
		o(c)
	}
}

// --- Walk parameterization (core.Params) ---

// WithParams replaces the whole walk parameterization. Use the finer
// options below for single-knob changes.
func WithParams(p Params) Option { return func(c *config) { c.params = p } }

// WithLambda pins the short-walk base length λ directly (tests/ablations).
func WithLambda(lambda int) Option { return func(c *config) { c.params.Lambda = lambda } }

// WithLambdaC scales the practical short-walk length λ = ⌈c·√(ℓD)⌉.
func WithLambdaC(cc float64) Option { return func(c *config) { c.params.LambdaC = cc } }

// WithEta sets η, the Phase 1 short walks prepared per unit of degree.
func WithEta(eta int) Option { return func(c *config) { c.params.Eta = eta } }

// WithTheory applies the paper's constants verbatim
// (λ = 24·√(ℓD)·(log₂ n)³, η = 1).
func WithTheory() Option { return func(c *config) { c.params.Theory = true } }

// WithMetropolis samples the Metropolis-Hastings walk with uniform target
// distribution instead of the simple walk.
func WithMetropolis() Option { return func(c *config) { c.params.Metropolis = true } }

// WithDNP09 applies the PODC 2009 baseline parameterization
// (Õ(ℓ^{2/3}D^{1/3}) rounds) for the given walk length and diameter.
func WithDNP09(ell, diam int) Option {
	return func(c *config) { c.params = core.DNP09Params(ell, diam) }
}

// --- Spanning-tree driver (spanning.Options) ---

// WithRSTOptions replaces the whole random-spanning-tree tuning.
func WithRSTOptions(o RSTOptions) Option { return func(c *config) { c.rst = o } }

// WithStartLength sets the initial walk length ℓ of the RST cover search.
func WithStartLength(ell int) Option { return func(c *config) { c.rst.StartLength = ell } }

// WithWalksPerPhase sets the number of candidate walks per RST doubling
// phase (default ⌈log₂ n⌉).
func WithWalksPerPhase(k int) Option { return func(c *config) { c.rst.WalksPerPhase = k } }

// WithDeliverTree additionally upcasts the sampled tree's edges to the
// root (the paper's optional O(n) delivery).
func WithDeliverTree() Option { return func(c *config) { c.rst.Deliver = true } }

// --- Mixing-time estimator (mixing.Options) ---

// WithMixingOptions replaces the whole mixing-estimator tuning.
func WithMixingOptions(o MixingOptions) Option { return func(c *config) { c.mix = o } }

// WithTrials sets K, the walks sampled per tested length in the
// mixing-time estimator (default ⌈6·√n⌉).
func WithTrials(k int) Option { return func(c *config) { c.mix.Samples = k } }

// WithEps sets the target ℓ₁ closeness of the mixing test (default 1/2e,
// the paper's τ_mix definition).
func WithEps(eps float64) Option { return func(c *config) { c.mix.Eps = eps } }

// WithMaxEll caps the mixing estimator's doubling search.
func WithMaxEll(ell int) Option { return func(c *config) { c.mix.MaxEll = ell } }

// --- Service-level knobs ---

// WithWorkers sets the worker-pool size, i.e. how many requests execute
// concurrently (default GOMAXPROCS). Construction-time only: per-request
// use is ignored, since the pool is already built.
func WithWorkers(n int) Option {
	return func(c *config) {
		if n >= 1 {
			c.workers = n
		}
	}
}

// WithShards partitions every worker's simulated network into s parallel
// shards: each simulated round's per-node processing runs on s goroutines
// (degree-balanced contiguous node ranges) with a deterministic merge at
// the round barrier, so results, walk outputs and simulated cost counters
// stay bit-identical to the sequential engine while wall-clock time for
// large graphs drops with cores. s <= 0 selects auto (GOMAXPROCS at
// construction); s is clamped to the graph size. Construction-time only:
// per-request use is ignored. Sharding helps when per-round work is large
// (big graphs, wide batches); for small graphs the barrier overhead
// dominates and the default s = 1 is faster. Compose with WithWorkers
// deliberately: workers multiply throughput across requests, shards cut
// the latency of one request, and workers*shards goroutines contend for
// the same cores.
func WithShards(s int) Option {
	return func(c *config) {
		if s <= 0 {
			c.shards = -1
			return
		}
		c.shards = s
	}
}

// WithCluster runs the service's simulated networks in cluster mode: the
// transport layer (edge queues, fault charging, delivery) of shard i runs
// inside the distwalkd process at addrs[i], reached over the
// internal/wire protocol, while the protocol layer stays in this process.
// Execution is bit-identical to WithShards(len(addrs)) — same results,
// same cost counters, same fault census, per request key — the cluster
// identity suite pins exactly that. Each pool worker holds one session
// per engine, so a service runs Workers()×len(addrs) sessions; Close
// tears them all down. Construction-time only: per-request use is
// ignored. Cluster mode excludes WithShards (the in-process shard layout
// is moot; it is forced to 1) and requires len(addrs) <= n. NewService
// fails with ErrClusterConfig on a bad engine list and with a
// wire-typed error (ErrClusterEngine-matching on session failures) when
// an engine is unreachable or rejects the handshake.
func WithCluster(addrs ...string) Option {
	return func(c *config) {
		c.cluster = append([]string(nil), addrs...)
	}
}

// WithClusterFallback enables graceful degradation in cluster mode: when
// a remote engine is lost mid-request (timeout, crash, missed heartbeat,
// reconnect refused), the request transparently re-executes on in-process
// shards — the WithShards(len(addrs)) path — with the same derived seed.
// Sharded execution is bit-identical to cluster execution per (graph,
// service seed, key), so a failed-over result is indistinguishable from a
// fault-free cluster run; Stats().Cluster.Failovers counts how often it
// happened. Without this option a lost engine fails the request with a
// typed ErrClusterEngine error. Composes with WithRetry unchanged: the
// failover happens inside the attempt, before retry salting would kick
// in. Applies per request or as a service default.
func WithClusterFallback() Option { return func(c *config) { c.clusterFallback = true } }

// WithClusterRoundTimeout sets the per-exchange I/O deadline of cluster
// mode: every Push/Deliver/RunResult round trip with every engine must
// complete within d, or the run fails with ErrEngineTimeout (wrapped in
// ErrClusterEngine). Default 30s. The effective deadline tightens to the
// request context's remaining budget when that is shorter, with a 100ms
// floor so a nearly-expired context still gets one meaningful exchange.
// Applies per request or as a service default.
func WithClusterRoundTimeout(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.clusterRound = d
		}
	}
}

// WithClusterHandshakeTimeout bounds the TCP dial plus Hello/Welcome
// exchange of every engine session — the initial W×S dials and every
// supervisor reconnect (default: the wire package's 30s). Construction
// time only.
func WithClusterHandshakeTimeout(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.clusterHandshake = d
		}
	}
}

// WithClusterHeartbeat sets the idle heartbeat interval of cluster
// sessions: while no run is in flight, each session pings its engine
// every d and treats a missed reply as a lost engine (counted in
// Stats().Cluster.HeartbeatMisses, and repaired by reconnect on the next
// request). Default 10s; d <= 0 disables heartbeats. Construction-time
// only.
func WithClusterHeartbeat(d time.Duration) Option {
	return func(c *config) {
		if d <= 0 {
			c.clusterHeartbeat = -1
			return
		}
		c.clusterHeartbeat = d
	}
}

// WithClusterBackoff bounds the engine reconnect backoff: the k-th
// consecutive failed redial of an engine waits min(max, base << (k-1)),
// jittered, before the next attempt (defaults 100ms / 5s). The first
// redial after a loss is immediate; only dial failures back off.
// Construction-time only.
func WithClusterBackoff(base, max time.Duration) Option {
	return func(c *config) {
		if base > 0 {
			c.clusterBackoff = base
		}
		if max > 0 {
			c.clusterBackoffMax = max
		}
	}
}

// WithMaxRounds caps the simulated rounds of every engine run performed
// for a request; runs that exceed it fail with ErrBudgetExceeded.
func WithMaxRounds(r int) Option {
	return func(c *config) {
		if r >= 1 {
			c.maxRounds = r
		}
	}
}

// WithBatching enables the request-coalescing scheduler (construction
// time only): concurrent SubmitWalk/SubmitWalkTrace requests with
// compatible config coalesce into shared MANY-RANDOM-WALKS executions,
// amortizing the batch cost Õ(min(√(kℓD)+k, k+ℓ)) across its k walks. A
// batch flushes when it reaches maxBatch members or maxDelay after its
// first member arrived, whichever comes first; non-positive values keep
// the defaults (8 members, 2ms). Batched results are deterministic per
// batch composition — see internal/sched for the contract; the
// synchronous entry points keep their per-key determinism regardless.
func WithBatching(maxBatch int, maxDelay time.Duration) Option {
	return func(c *config) {
		c.batchOn = true
		if maxBatch >= 1 {
			c.batch.MaxBatch = maxBatch
		}
		if maxDelay > 0 {
			c.batch.MaxDelay = maxDelay
		}
	}
}

// WithResultCache equips the service with the deterministic result cache
// (internal/cache): a sharded, byte-accounted LRU over completed request
// results, keyed by a canonical digest of every result-determining input.
// Because each request is a pure function of (graph generation, service
// seed, request key, parameterization, budgets), a hit is bit-identical
// to a fresh execution — cost counters included — and entries never
// expire; the only invalidation is Service.InvalidateCache. Concurrent
// identical requests coalesce: one executes, the rest attach to it
// (ServiceStats.Cache.CoalescedWaiters), including async Submit handles.
// bytes is the total capacity; values below 1 are ignored (no cache).
// Construction-time only.
func WithResultCache(bytes int64) Option {
	return func(c *config) {
		if bytes >= 1 {
			c.cacheBytes = bytes
		}
	}
}

// WithCacheAdmission installs an admission policy on the result cache:
// only successful results the policy accepts are stored (e.g.
// CacheMinRounds keeps the expensive ones). Policies never see failed,
// partial, or batched-composition results — those are never offered.
// No-op without WithResultCache. Construction-time only.
func WithCacheAdmission(policy CacheAdmission) Option {
	return func(c *config) { c.cacheAdmit = policy }
}

// WithRetry sets how many times a failed request is re-executed before
// its error is returned (default 0: fail fast). Only retryable failures
// re-execute — see Retryable: typed fault errors (ErrNodeCrashed,
// ErrMessageLost) and transient scheduling rejections (ErrQueueFull,
// ErrBatchAborted). Each retry runs with a fresh seed derived from
// (service seed, request key, attempt number), so a walk that died in a
// crashed or lossy region re-randomizes deterministically: the result of
// (key, attempt) is reproducible, and attempt 0 is bit-identical to a
// service without retries. Context deadlines are honored between
// attempts (see WithBackoff). Applies per request or as a service
// default.
func WithRetry(max int) Option {
	return func(c *config) {
		if max >= 0 {
			c.retries = max
		}
	}
}

// WithBackoff sets the base wait before retries: the r-th retry waits
// base << (r-1), aborting early (with the context error) if the request
// context expires first. Default 0: retries run back to back — the
// "network" is simulated, so waiting is only useful when callers want to
// rate-limit recovery work.
func WithBackoff(base time.Duration) Option {
	return func(c *config) {
		if base >= 0 {
			c.backoff = base
		}
	}
}

// WithPartialResults switches ManyRandomWalks to per-walk failure
// isolation: walks killed by injected faults no longer fail the whole
// request; survivors complete and ManyResult.Errs reports the casualties
// (Errs[i] non-nil, Destinations[i] == None). Shared-phase failures
// (BFS tree, Phase 1, cancellation) still fail the request. Per-walk
// errors do not trigger WithRetry — the request itself succeeded.
func WithPartialResults() Option { return func(c *config) { c.partial = true } }

// WithFaultPlan installs a deterministic fault plan on every worker's
// simulated network: crash-stop failures, churn windows, lossy and slow
// links, all derived from the plan's seed (see FaultPlan and
// RandomFaultPlan). Same (plan, graph, request key) — same faults, same
// result, at any shard count. Construction-time only: per-request use is
// ignored. NewService fails with ErrBadFault if the plan is invalid for
// the graph.
func WithFaultPlan(p *FaultPlan) Option { return func(c *config) { c.fplan = p } }

// WithBatchQueueLimit bounds each batch admission queue (construction
// time only; default 4x the batch size). When executions cannot keep up
// and a queue is full, SubmitWalk fails fast with ErrQueueFull instead
// of queueing unboundedly. A limit below the batch size is honored:
// batches then cap at the limit and flush on the delay window.
func WithBatchQueueLimit(n int) Option {
	return func(c *config) {
		if n >= 1 {
			c.batch.QueueLimit = n
		}
	}
}
