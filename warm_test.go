package distwalk

import (
	"context"
	"reflect"
	"testing"
)

// TestWarmWorkerDeterminism is the warm-reuse stress test: one worker
// serving a long mixed sequence of requests must return, for every
// request, exactly what a fresh single-use service returns for the same
// (seed, key, request). This pins the Service's per-key determinism
// contract against the pooled walker's Reset path: nothing a worker served
// before may leak into the next request.
func TestWarmWorkerDeterminism(t *testing.T) {
	g, err := Torus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 4242
	warm, err := NewService(g, seed, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	ctx := context.Background()

	// freshly runs one request on a brand-new single-worker service, so
	// its worker's network and walker have no history at all.
	freshly := func(do func(s *Service) (any, error)) any {
		t.Helper()
		s, err := NewService(g, seed, WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		out, err := do(s)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	check := func(name string, key uint64, do func(s *Service) (any, error)) {
		t.Helper()
		got, err := do(warm)
		if err != nil {
			t.Fatalf("%s (key %d) on warm worker: %v", name, key, err)
		}
		want := freshly(do)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s (key %d): warm worker diverged from fresh service\nwarm:  %+v\nfresh: %+v",
				name, key, got, want)
		}
	}

	// A long sequence of heterogeneous requests on the same worker; every
	// one compared against a zero-history execution. Repeated keys appear
	// deliberately: same key, same result, regardless of position.
	mh := DefaultParams()
	mh.Metropolis = true
	for round := 0; round < 3; round++ {
		for _, key := range []uint64{1, 7, 99, 7} {
			k := key
			check("SingleRandomWalk", k, func(s *Service) (any, error) {
				return s.SingleRandomWalk(ctx, k, 3, 700)
			})
			check("ManyRandomWalks", k, func(s *Service) (any, error) {
				return s.ManyRandomWalks(ctx, k, []NodeID{0, 9, 17, 9}, 300)
			})
			check("WalkTrace", k, func(s *Service) (any, error) {
				walk, trace, err := s.WalkTrace(ctx, k, 5, 400)
				if err != nil {
					return nil, err
				}
				return []any{walk, trace}, nil
			})
			check("MetropolisWalk", k, func(s *Service) (any, error) {
				return s.SingleRandomWalk(ctx, k, 1, 256, WithParams(mh))
			})
			check("RandomSpanningTree", k, func(s *Service) (any, error) {
				return s.RandomSpanningTree(ctx, k, 2)
			})
		}
	}
}

// TestWarmWorkerReusesState pins the allocation half of warm pooling: a
// single-worker service serving repeated requests must not rebuild its
// protocol state per request. Before the slab-backed stores, every request
// allocated a netState with per-node maps on first touch (thousands of
// allocations for this workload); warm reuse leaves only the per-request
// results, channels and scheduling — well under the bound here.
func TestWarmWorkerReusesState(t *testing.T) {
	g, err := Torus(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(g, 7, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	req := func() {
		if _, err := svc.ManyRandomWalks(ctx, 11, make([]NodeID, 4), 256); err != nil {
			t.Fatal(err)
		}
	}
	req() // warm the worker's slabs (first request pays the growth)
	req() // and once more so high-water marks are settled
	allocs := testing.AllocsPerRun(5, req)
	// The old per-request netState rebuild alone cost >2000 allocations on
	// this workload; the warm path stays two orders of magnitude below.
	// The bound is deliberately loose: it catches "rebuilds state per
	// request", not incidental runtime noise.
	if allocs > 500 {
		t.Fatalf("warm request allocated %.0f times; worker state is not being reused", allocs)
	}
}
