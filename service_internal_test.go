package distwalk

import (
	"context"
	"testing"

	"distwalk/internal/core"
)

// TestServiceMatchesDerivedSeedWalker pins the sharding contract: a
// request served by a pooled, reseeded network is bit-identical to a
// fresh single-threaded Walker built with the request's derived seed.
// This is what makes the low-level engine and the service the same
// algorithm, not two.
func TestServiceMatchesDerivedSeedWalker(t *testing.T) {
	g, err := Torus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	const seed, key = 42, 987
	svc, err := NewService(g, seed, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	got, err := svc.SingleRandomWalk(context.Background(), key, 3, 2048)
	if err != nil {
		t.Fatal(err)
	}
	w, err := core.NewWalker(g, deriveSeed(seed, key), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	want, err := w.SingleRandomWalk(3, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if got.Destination != want.Destination || got.Cost != want.Cost {
		t.Fatalf("service (dest %d, %+v) != derived-seed walker (dest %d, %+v)",
			got.Destination, got.Cost, want.Destination, want.Cost)
	}
}
