//go:build !race

package distwalk_test

const raceEnabled = false
