package distwalk_test

import (
	"errors"
	"fmt"
	"testing"

	"distwalk"
)

// TestSentinelTaxonomy table-tests the exported sentinel set: every
// sentinel must survive wrapping under errors.Is (the dispatch idiom the
// package documents) and must not match any other sentinel, so callers
// can switch on them safely.
func TestSentinelTaxonomy(t *testing.T) {
	sentinels := []struct {
		name string
		err  error
	}{
		{"ErrBadNode", distwalk.ErrBadNode},
		{"ErrBadLength", distwalk.ErrBadLength},
		{"ErrGraphTooSmall", distwalk.ErrGraphTooSmall},
		{"ErrBadParams", distwalk.ErrBadParams},
		{"ErrConcurrentUse", distwalk.ErrConcurrentUse},
		{"ErrBudgetExceeded", distwalk.ErrBudgetExceeded},
		{"ErrDisconnected", distwalk.ErrDisconnected},
		{"ErrRetryExhausted", distwalk.ErrRetryExhausted},
		{"ErrNoMixing", distwalk.ErrNoMixing},
		{"ErrNoCover", distwalk.ErrNoCover},
		{"ErrServiceClosed", distwalk.ErrServiceClosed},
		{"ErrNoRegen", distwalk.ErrNoRegen},
		{"ErrQueueFull", distwalk.ErrQueueFull},
		{"ErrBatchAborted", distwalk.ErrBatchAborted},
	}
	for _, tc := range sentinels {
		t.Run(tc.name, func(t *testing.T) {
			wrapped := fmt.Errorf("outer context: %w", fmt.Errorf("inner: %w", tc.err))
			if !errors.Is(wrapped, tc.err) {
				t.Fatalf("%s does not match itself through two wraps", tc.name)
			}
			for _, other := range sentinels {
				if other.name == tc.name {
					continue
				}
				// ErrRetryExhausted deliberately may carry ErrDisconnected
				// via RetryError, but the bare sentinels must not overlap.
				if errors.Is(wrapped, other.err) {
					t.Fatalf("%s unexpectedly matches %s", tc.name, other.name)
				}
			}
		})
	}
}

// TestBatchSentinelCauses pins the documented double-match: a batch
// abort wraps both ErrBatchAborted and its cause, so callers can dispatch
// on either.
func TestBatchSentinelCauses(t *testing.T) {
	err := fmt.Errorf("%w (request 7): %w", distwalk.ErrBatchAborted, distwalk.ErrServiceClosed)
	if !errors.Is(err, distwalk.ErrBatchAborted) || !errors.Is(err, distwalk.ErrServiceClosed) {
		t.Fatal("batch abort error must match both the sentinel and its cause")
	}
}
