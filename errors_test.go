package distwalk_test

import (
	"errors"
	"fmt"
	"testing"

	"distwalk"
)

// TestSentinelTaxonomy table-tests the exported sentinel set: every
// sentinel must survive wrapping under errors.Is (the dispatch idiom the
// package documents) and must not match any other sentinel, so callers
// can switch on them safely.
func TestSentinelTaxonomy(t *testing.T) {
	sentinels := []struct {
		name string
		err  error
	}{
		{"ErrBadNode", distwalk.ErrBadNode},
		{"ErrBadLength", distwalk.ErrBadLength},
		{"ErrGraphTooSmall", distwalk.ErrGraphTooSmall},
		{"ErrBadParams", distwalk.ErrBadParams},
		{"ErrBudgetExceeded", distwalk.ErrBudgetExceeded},
		{"ErrDisconnected", distwalk.ErrDisconnected},
		{"ErrRetryExhausted", distwalk.ErrRetryExhausted},
		{"ErrNoMixing", distwalk.ErrNoMixing},
		{"ErrNoCover", distwalk.ErrNoCover},
		{"ErrServiceClosed", distwalk.ErrServiceClosed},
		{"ErrNoRegen", distwalk.ErrNoRegen},
		{"ErrQueueFull", distwalk.ErrQueueFull},
		{"ErrBatchAborted", distwalk.ErrBatchAborted},
		{"ErrNodeCrashed", distwalk.ErrNodeCrashed},
		{"ErrMessageLost", distwalk.ErrMessageLost},
		{"ErrBadFault", distwalk.ErrBadFault},
	}
	for _, tc := range sentinels {
		t.Run(tc.name, func(t *testing.T) {
			wrapped := fmt.Errorf("outer context: %w", fmt.Errorf("inner: %w", tc.err))
			if !errors.Is(wrapped, tc.err) {
				t.Fatalf("%s does not match itself through two wraps", tc.name)
			}
			for _, other := range sentinels {
				if other.name == tc.name {
					continue
				}
				// ErrRetryExhausted deliberately may carry ErrDisconnected
				// via RetryError, but the bare sentinels must not overlap.
				if errors.Is(wrapped, other.err) {
					t.Fatalf("%s unexpectedly matches %s", tc.name, other.name)
				}
			}
		})
	}
}

// TestBatchSentinelCauses pins the documented double-match: a batch
// abort wraps both ErrBatchAborted and its cause, so callers can dispatch
// on either.
func TestBatchSentinelCauses(t *testing.T) {
	err := fmt.Errorf("%w (request 7): %w", distwalk.ErrBatchAborted, distwalk.ErrServiceClosed)
	if !errors.Is(err, distwalk.ErrBatchAborted) || !errors.Is(err, distwalk.ErrServiceClosed) {
		t.Fatal("batch abort error must match both the sentinel and its cause")
	}
}

// TestFaultErrorTypes pins the errors.As contract of the typed fault
// errors: the concrete types carry the loss site and match their
// sentinels through wrapping.
func TestFaultErrorTypes(t *testing.T) {
	crash := fmt.Errorf("request failed: %w", &distwalk.NodeCrashedError{Node: 7, Round: 42})
	if !errors.Is(crash, distwalk.ErrNodeCrashed) {
		t.Fatal("NodeCrashedError does not match ErrNodeCrashed")
	}
	var nce *distwalk.NodeCrashedError
	if !errors.As(crash, &nce) || nce.Node != 7 || nce.Round != 42 {
		t.Fatalf("errors.As lost the crash site: %+v", nce)
	}
	lost := fmt.Errorf("request failed: %w", &distwalk.MessageLostError{From: 1, To: 2, Round: 9})
	if !errors.Is(lost, distwalk.ErrMessageLost) {
		t.Fatal("MessageLostError does not match ErrMessageLost")
	}
	var mle *distwalk.MessageLostError
	if !errors.As(lost, &mle) || mle.From != 1 || mle.To != 2 || mle.Round != 9 {
		t.Fatalf("errors.As lost the loss site: %+v", mle)
	}
	if errors.Is(crash, distwalk.ErrMessageLost) || errors.Is(lost, distwalk.ErrNodeCrashed) {
		t.Fatal("fault sentinels overlap")
	}
}

// TestRetryablePredicate table-tests the documented retry policy.
func TestRetryablePredicate(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"node crashed", fmt.Errorf("x: %w", distwalk.ErrNodeCrashed), true},
		{"message lost", fmt.Errorf("x: %w", distwalk.ErrMessageLost), true},
		{"queue full", fmt.Errorf("x: %w", distwalk.ErrQueueFull), true},
		{"batch aborted", fmt.Errorf("x: %w", distwalk.ErrBatchAborted), true},
		{"batch aborted by shutdown", fmt.Errorf("%w: %w", distwalk.ErrBatchAborted, distwalk.ErrServiceClosed), false},
		{"budget exceeded", fmt.Errorf("x: %w", distwalk.ErrBudgetExceeded), false},
		{"bad node", fmt.Errorf("x: %w", distwalk.ErrBadNode), false},
		{"service closed", fmt.Errorf("x: %w", distwalk.ErrServiceClosed), false},
		{"bad fault plan", fmt.Errorf("x: %w", distwalk.ErrBadFault), false},
	} {
		if got := distwalk.Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}
