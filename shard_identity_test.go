package distwalk_test

// Sequential-vs-sharded bit-identity: a service whose workers run their
// simulated networks on S parallel shards (WithShards) must produce, for
// every request key, exactly the results and simulated cost counters of
// the plain sequential engine — sharding is a wall-clock optimization with
// no observable footprint. These tests run the full stack (Service ->
// core walk algorithms -> spanning/mixing drivers -> sharded CONGEST
// engine) concurrently at 2, 4 and 8 shards and compare bit for bit; CI
// runs them under -race -count=2, which also proves the shard barrier
// discipline and the per-node protocol state discipline are data-race
// free. They do not need (and do not skip below) a matching CPU count:
// correctness must hold on any GOMAXPROCS; only the wall-clock speedup
// assertion below self-skips.

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"distwalk"
)

// shardWorkload runs one request against a service and returns a
// comparable digest of everything observable: outputs plus exact cost.
type shardWorkload struct {
	name string
	run  func(svc *distwalk.Service, key uint64) (string, error)
}

func shardWorkloads() []shardWorkload {
	ctx := context.Background()
	return []shardWorkload{
		{"SingleRandomWalk", func(svc *distwalk.Service, key uint64) (string, error) {
			res, err := svc.SingleRandomWalk(ctx, key, 0, 1024)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("dest=%d len=%d refills=%d cost=%+v", res.Destination, res.Length, res.Refills, res.Cost), nil
		}},
		{"ManyRandomWalks", func(svc *distwalk.Service, key uint64) (string, error) {
			sources := make([]distwalk.NodeID, 6)
			for i := range sources {
				sources[i] = distwalk.NodeID(i * 7 % svc.Graph().N())
			}
			res, err := svc.ManyRandomWalks(ctx, key, sources, 512)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("dests=%v refills=%d cost=%+v", res.Destinations, res.Refills, res.Cost), nil
		}},
		{"WalkTrace", func(svc *distwalk.Service, key uint64) (string, error) {
			walk, trace, err := svc.WalkTrace(ctx, key, 3, 512)
			if err != nil {
				return "", err
			}
			sum := int64(0)
			for v, ft := range trace.FirstVisitTime {
				sum += int64(ft)*31 + int64(trace.FirstVisitFrom[v])
				for _, p := range trace.Positions[v] {
					sum = sum*3 + int64(p)
				}
			}
			return fmt.Sprintf("dest=%d visits=%d cost=%+v tcost=%+v", walk.Destination, sum, walk.Cost, trace.Cost), nil
		}},
		{"RefillWalks", func(svc *distwalk.Service, key uint64) (string, error) {
			// Deliberately under-provisioned Phase 1 forces GET-MORE-WALKS
			// refills and their backward retraces — the protocol paths where
			// many nodes process token bundles in one round, i.e. where
			// sharded stepping is most concurrent.
			p := distwalk.DefaultParams()
			p.UniformCounts = true
			p.Lambda = 48
			sources := make([]distwalk.NodeID, 8)
			res, err := svc.ManyRandomWalks(ctx, key, sources, 512, distwalk.WithParams(p))
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("dests=%v refills=%d cost=%+v", res.Destinations, res.Refills, res.Cost), nil
		}},
		{"RandomSpanningTree", func(svc *distwalk.Service, key uint64) (string, error) {
			res, err := svc.RandomSpanningTree(ctx, key, 0)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("parents=%v cost=%+v", res.Parent, res.Cost), nil
		}},
		{"EstimateMixingTime", func(svc *distwalk.Service, key uint64) (string, error) {
			est, err := svc.EstimateMixingTime(ctx, key, 0, distwalk.WithTrials(24), distwalk.WithMaxEll(256))
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("tau=%d cost=%+v", est.Tau, est.Cost), nil
		}},
	}
}

func testShardIdentity(t *testing.T, shards int) {
	torus, err := distwalk.Torus(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	regular, err := distwalk.RandomRegular(48, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*distwalk.Graph{"torus12x12": torus, "regular48x4": regular}
	for gname, g := range graphs {
		t.Run(gname, func(t *testing.T) {
			seq, err := distwalk.NewService(g, 42, distwalk.WithWorkers(2))
			if err != nil {
				t.Fatal(err)
			}
			defer seq.Close()
			shd, err := distwalk.NewService(g, 42, distwalk.WithWorkers(2), distwalk.WithShards(shards))
			if err != nil {
				t.Fatal(err)
			}
			defer shd.Close()
			if got := shd.Shards(); got != shards {
				t.Fatalf("Shards() = %d, want %d", got, shards)
			}

			// All (workload, key) pairs fire concurrently against both
			// services: per-key determinism must hold regardless of worker
			// scheduling AND of the shard interleaving inside each worker.
			type outcome struct {
				name string
				key  uint64
				seq  string
				shd  string
			}
			var (
				mu   sync.Mutex
				outs []outcome
				wg   sync.WaitGroup
			)
			for _, wl := range shardWorkloads() {
				for key := uint64(1); key <= 2; key++ {
					wg.Add(1)
					go func(wl shardWorkload, key uint64) {
						defer wg.Done()
						a, errA := wl.run(seq, key)
						b, errB := wl.run(shd, key)
						if errA != nil || errB != nil {
							t.Errorf("%s key %d: sequential err %v, sharded err %v", wl.name, key, errA, errB)
							return
						}
						mu.Lock()
						outs = append(outs, outcome{wl.name, key, a, b})
						mu.Unlock()
					}(wl, key)
				}
			}
			wg.Wait()
			for _, o := range outs {
				if o.seq != o.shd {
					t.Errorf("%s key %d diverged:\n  sequential: %s\n  sharded(%d): %s", o.name, o.key, o.seq, shards, o.shd)
				}
			}

			// The sharded service accounted its per-shard work.
			st := shd.Stats()
			if st.Shards.Shards != shards || len(st.Shards.Stepped) != shards {
				t.Fatalf("sharded Stats().Shards = %+v, want %d shards", st.Shards, shards)
			}
			var stepped int64
			for _, s := range st.Shards.Stepped {
				stepped += s
			}
			if stepped == 0 {
				t.Fatal("sharded Stats() recorded no per-shard steps")
			}
			if seqSt := seq.Stats(); seqSt.Shards.Shards != 0 {
				t.Fatalf("sequential Stats().Shards = %+v, want zero", seqSt.Shards)
			}
		})
	}
}

func TestShardIdentity2(t *testing.T) { testShardIdentity(t, 2) }
func TestShardIdentity4(t *testing.T) { testShardIdentity(t, 4) }
func TestShardIdentity8(t *testing.T) { testShardIdentity(t, 8) }

// testShardIdentityFaulty is the crash-variant of the bit-identity
// contract: with a fault plan installed (a crash, churn windows, lossy and
// slow links), every request must produce identical results, identical
// FaultStats (embedded in cost=%+v) and — for requests the faults kill —
// the identical typed error text at every shard count. Retries and
// partial-results mode are on, so the retry layer's salted re-seeding is
// covered by the identity check too.
func testShardIdentityFaulty(t *testing.T, shards int) {
	g, err := distwalk.Torus(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	plan := &distwalk.FaultPlan{
		Seed:    77,
		Crashes: []distwalk.FaultCrash{{Node: 100, Round: 260}},
		Churn: []distwalk.FaultChurn{
			{Node: 37, From: 40, To: 160},
			{Node: 88, From: 90, To: 140},
		},
		LinkDrops: []distwalk.FaultLinkDrop{
			{From: 0, To: g.Neighbors(0)[0].To, Prob: 0.05},
			{From: 70, To: g.Neighbors(70)[1].To, Prob: 0.1},
		},
		LinkDelays: []distwalk.FaultLinkDelay{
			{From: 30, To: g.Neighbors(30)[0].To, Rounds: 1},
		},
	}
	build := func(opts ...distwalk.Option) *distwalk.Service {
		svc, err := distwalk.NewService(g, 42, append([]distwalk.Option{
			distwalk.WithWorkers(2),
			distwalk.WithFaultPlan(plan),
			distwalk.WithRetry(2),
			distwalk.WithBackoff(0),
			distwalk.WithPartialResults(),
		}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return svc
	}
	seq := build()
	defer seq.Close()
	shd := build(distwalk.WithShards(shards))
	defer shd.Close()

	ctx := context.Background()
	workloads := []shardWorkload{
		{"SingleRandomWalk", func(svc *distwalk.Service, key uint64) (string, error) {
			res, err := svc.SingleRandomWalk(ctx, key, 0, 768)
			if err != nil {
				return "err=" + err.Error(), nil
			}
			return fmt.Sprintf("dest=%d len=%d cost=%+v", res.Destination, res.Length, res.Cost), nil
		}},
		{"ManyRandomWalks", func(svc *distwalk.Service, key uint64) (string, error) {
			sources := make([]distwalk.NodeID, 6)
			for i := range sources {
				sources[i] = distwalk.NodeID(i * 19 % svc.Graph().N())
			}
			res, err := svc.ManyRandomWalks(ctx, key, sources, 512)
			if err != nil {
				return "err=" + err.Error(), nil
			}
			return fmt.Sprintf("dests=%v failed=%d errs=%v cost=%+v", res.Destinations, res.Failed, res.Errs, res.Cost), nil
		}},
		{"RandomSpanningTree", func(svc *distwalk.Service, key uint64) (string, error) {
			res, err := svc.RandomSpanningTree(ctx, key, 0)
			if err != nil {
				return "err=" + err.Error(), nil
			}
			return fmt.Sprintf("parents=%v cost=%+v", res.Parent, res.Cost), nil
		}},
		{"EstimateMixingTime", func(svc *distwalk.Service, key uint64) (string, error) {
			est, err := svc.EstimateMixingTime(ctx, key, 0, distwalk.WithTrials(16), distwalk.WithMaxEll(128))
			if err != nil {
				return "err=" + err.Error(), nil
			}
			return fmt.Sprintf("tau=%d cost=%+v", est.Tau, est.Cost), nil
		}},
	}

	sawFault := false
	for _, wl := range workloads {
		for key := uint64(1); key <= 3; key++ {
			a, _ := wl.run(seq, key)
			b, _ := wl.run(shd, key)
			if a != b {
				t.Errorf("%s key %d diverged under faults:\n  sequential: %s\n  sharded(%d): %s", wl.name, key, a, shards, b)
			}
			if strings.Contains(a, "err=") || strings.Contains(a, "LinkDropped:") && !strings.Contains(a, "LinkDropped:0") {
				sawFault = true
			}
		}
	}
	// The retry layer's counters are deterministic per key, so the totals
	// must be shard-invariant too.
	if a, b := seq.Stats().Retry, shd.Stats().Retry; a != b {
		t.Errorf("retry counters diverged: sequential %+v, sharded(%d) %+v", a, shards, b)
	}
	if seq.Stats().Retry.Faults == 0 && !sawFault {
		t.Error("fault plan left no observable trace; the scenario needs retuning")
	}
}

func TestShardIdentityFaulty2(t *testing.T) { testShardIdentityFaulty(t, 2) }
func TestShardIdentityFaulty4(t *testing.T) { testShardIdentityFaulty(t, 4) }
func TestShardIdentityFaulty8(t *testing.T) { testShardIdentityFaulty(t, 8) }

// TestShardIdentityBatched pins that the batching scheduler composes with
// sharded workers: a coalesced batch executes bit-identically on sharded
// and sequential pools.
func TestShardIdentityBatched(t *testing.T) {
	g, err := distwalk.Torus(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	digest := func(opts ...distwalk.Option) string {
		opts = append([]distwalk.Option{distwalk.WithWorkers(1), distwalk.WithBatching(4, time.Second)}, opts...)
		svc, err := distwalk.NewService(g, 42, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		handles := make([]*distwalk.WalkHandle, 4)
		for i := range handles {
			h, err := svc.SubmitWalk(ctx, uint64(10+i), 0, 512)
			if err != nil {
				t.Fatal(err)
			}
			handles[i] = h
		}
		out := ""
		for _, h := range handles {
			res, err := h.Result()
			if err != nil {
				t.Fatal(err)
			}
			out += fmt.Sprintf("%d/%+v;", res.Destination, res.Cost)
		}
		return out
	}
	seq := digest()
	for _, shards := range []int{2, 4} {
		if got := digest(distwalk.WithShards(shards)); got != seq {
			t.Errorf("batched run diverged at %d shards:\n  sequential: %s\n  sharded: %s", shards, seq, got)
		}
	}
}

// TestShardedWallClockSpeedup is the perf acceptance gate: on a large
// graph, one sharded request must not be slower than the sequential
// engine when real parallelism is available. Self-skips below 4 CPUs and
// under -race, like TestServiceParallelSpeedup.
func TestShardedWallClockSpeedup(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock comparison is not meaningful under the race detector's overhead")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need >= 4 CPUs for a meaningful comparison, have %d", runtime.GOMAXPROCS(0))
	}
	if testing.Short() {
		t.Skip("large-graph wall-clock comparison skipped in -short mode")
	}
	g, err := distwalk.Torus(48, 48)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	measure := func(opts ...distwalk.Option) time.Duration {
		opts = append([]distwalk.Option{distwalk.WithWorkers(1)}, opts...)
		svc, err := distwalk.NewService(g, 42, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		sources := make([]distwalk.NodeID, 8)
		run := func(key uint64) time.Duration {
			start := time.Now()
			if _, err := svc.ManyRandomWalks(ctx, key, sources, 2048); err != nil {
				t.Fatal(err)
			}
			return time.Since(start)
		}
		run(1) // warm-up: slabs, rings, tree
		best := run(2)
		if d := run(2); d < best {
			best = d
		}
		return best
	}
	serial := measure()
	sharded := measure(distwalk.WithShards(4))
	t.Logf("sequential %v, sharded(4) %v (%.2fx)", serial, sharded, float64(serial)/float64(sharded))
	// The expectation is sharded <= sequential; the 10% allowance absorbs
	// shared-runner scheduling noise (best-of-2 runs on a 4-vCPU CI box
	// still jitter by a few percent), the same reason the bench gate
	// treats ns/op-only failures as retryable.
	if float64(sharded) > 1.10*float64(serial) {
		t.Fatalf("sharded execution slower than sequential on %d CPUs: %v vs %v (>10%% over)", runtime.GOMAXPROCS(0), sharded, serial)
	}
}
