package distwalk_test

// Dynamic-topology tests: ApplyMutations semantics (atomicity, COW,
// generation accounting), cache invalidation equivalence with
// InvalidateCache, epoch pinning and stale aborts across in-flight and
// queued requests, and the mutation axis of the bit-identity contract
// (same results at every shard count, in-process and cluster alike).

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"distwalk"
)

func mustTorus(t *testing.T, r, c int) *distwalk.Graph {
	t.Helper()
	g, err := distwalk.Torus(r, c)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// neighborsHave reports whether g has an edge u-v.
func neighborsHave(g *distwalk.Graph, u, v distwalk.NodeID) bool {
	for _, h := range g.Neighbors(u) {
		if h.To == v {
			return true
		}
	}
	return false
}

func TestApplyMutationsBasics(t *testing.T) {
	ctx := context.Background()
	g := mustTorus(t, 6, 6)
	svc, err := distwalk.NewService(g, 42)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if got := svc.Generation(); got != 1 {
		t.Fatalf("fresh Generation() = %v, want 1", got)
	}

	// An empty batch is a no-op, not a bump.
	gen, err := svc.ApplyMutations(ctx, distwalk.Mutations{})
	if err != nil || gen != 1 {
		t.Fatalf("empty batch: gen %v err %v, want 1 <nil>", gen, err)
	}

	gen, err = svc.ApplyMutations(ctx, distwalk.Mutations{
		RemoveEdges: []distwalk.EdgeMutation{{U: 0, V: 1}},
		AddEdges:    []distwalk.EdgeMutation{{U: 0, V: 20}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 || svc.Generation() != 2 {
		t.Fatalf("post-mutation generation = %v / %v, want 2", gen, svc.Generation())
	}
	g2 := svc.Graph()
	if g2 == g {
		t.Fatal("Graph() still returns the pre-mutation graph")
	}
	if neighborsHave(g2, 0, 1) || !neighborsHave(g2, 0, 20) {
		t.Fatalf("mutated graph edges wrong: 0-1 present=%v, 0-20 present=%v",
			neighborsHave(g2, 0, 1), neighborsHave(g2, 0, 20))
	}
	// Copy-on-write: the input graph is untouched.
	if !neighborsHave(g, 0, 1) || neighborsHave(g, 0, 20) {
		t.Fatal("ApplyMutations modified the original graph")
	}

	st := svc.Stats().Mutation
	if st.Generation != 2 || st.Applied != 1 || st.EdgesAdded != 1 || st.EdgesRemoved != 1 {
		t.Fatalf("MutationStats = %+v, want gen 2, 1 applied, 1 added, 1 removed", st)
	}

	// A request on the mutated topology is bit-identical to the same
	// request on a service built directly over the mutated graph: the
	// generation ordinal must leave results untouched.
	res, err := svc.SingleRandomWalk(ctx, 9, 0, 2048)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := distwalk.NewService(g2, 42)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	want, err := fresh.SingleRandomWalk(ctx, 9, 0, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if res.Destination != want.Destination || res.Cost != want.Cost {
		t.Fatalf("post-mutation request diverged from fresh service:\n  mutated: dest=%d cost=%+v\n  fresh:   dest=%d cost=%+v",
			res.Destination, res.Cost, want.Destination, want.Cost)
	}
}

func TestApplyMutationsRejectsBadBatches(t *testing.T) {
	ctx := context.Background()
	g := mustTorus(t, 6, 6)
	svc, err := distwalk.NewService(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	cases := []struct {
		name string
		m    distwalk.Mutations
	}{
		{"missing removal", distwalk.Mutations{RemoveEdges: []distwalk.EdgeMutation{{U: 0, V: 20}}}},
		{"self loop", distwalk.Mutations{AddEdges: []distwalk.EdgeMutation{{U: 3, V: 3}}}},
		{"out of range", distwalk.Mutations{AddEdges: []distwalk.EdgeMutation{{U: 0, V: 99}}}},
		{"negative weight", distwalk.Mutations{AddEdges: []distwalk.EdgeMutation{{U: 0, V: 20, W: -1}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gen, err := svc.ApplyMutations(ctx, tc.m)
			if !errors.Is(err, distwalk.ErrBadMutation) {
				t.Fatalf("err = %v, want ErrBadMutation", err)
			}
			if gen != 1 || svc.Generation() != 1 {
				t.Fatalf("rejected batch bumped the generation to %v", svc.Generation())
			}
		})
	}

	// A valid edit paired with an invalid one is rejected whole.
	gen, err := svc.ApplyMutations(ctx, distwalk.Mutations{
		AddEdges: []distwalk.EdgeMutation{{U: 0, V: 20}, {U: 5, V: 5}},
	})
	if !errors.Is(err, distwalk.ErrBadMutation) || gen != 1 {
		t.Fatalf("mixed batch: gen %v err %v, want rejection at gen 1", gen, err)
	}
	if neighborsHave(svc.Graph(), 0, 20) {
		t.Fatal("rejected batch partially applied")
	}

	// A done context rejects the batch before it applies.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := svc.ApplyMutations(cctx, distwalk.Mutations{AddEdges: []distwalk.EdgeMutation{{U: 0, V: 20}}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("done context: err = %v, want context.Canceled", err)
	}

	svc.Close()
	if _, err := svc.ApplyMutations(ctx, distwalk.Mutations{AddEdges: []distwalk.EdgeMutation{{U: 0, V: 20}}}); !errors.Is(err, distwalk.ErrServiceClosed) {
		t.Fatalf("closed service: err = %v, want ErrServiceClosed", err)
	}
}

func TestApplyMutationsRejectsFaultPlanOrphan(t *testing.T) {
	g := mustTorus(t, 6, 6)
	plan := &distwalk.FaultPlan{
		LinkDrops: []distwalk.FaultLinkDrop{{From: 0, To: 1, Prob: 0.5}},
	}
	svc, err := distwalk.NewService(g, 1, distwalk.WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	// Removing the dropped link would strand the installed plan on every
	// future worker reshape; the mutation must fail atomically instead.
	_, err = svc.ApplyMutations(context.Background(), distwalk.Mutations{
		RemoveEdges: []distwalk.EdgeMutation{{U: 0, V: 1}},
	})
	if !errors.Is(err, distwalk.ErrBadMutation) || !errors.Is(err, distwalk.ErrBadFault) {
		t.Fatalf("err = %v, want ErrBadMutation and ErrBadFault", err)
	}
	if svc.Generation() != 1 {
		t.Fatalf("generation bumped to %v by a rejected mutation", svc.Generation())
	}
	// Removing some other edge is fine.
	if _, err := svc.ApplyMutations(context.Background(), distwalk.Mutations{
		RemoveEdges: []distwalk.EdgeMutation{{U: 2, V: 3}},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestMutationInvalidatesLikeInvalidateCache pins the invalidation
// contract: ApplyMutations and InvalidateCache are the same epoch bump as
// far as the result cache is concerned — after either, a previously
// cached request misses (an old-generation hit is impossible), and
// repeats under the new generation hit again.
func TestMutationInvalidatesLikeInvalidateCache(t *testing.T) {
	ctx := context.Background()
	g := mustTorus(t, 8, 8)
	svc, err := distwalk.NewService(g, 42, distwalk.WithResultCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	run := func() {
		t.Helper()
		if _, err := svc.SingleRandomWalk(ctx, 5, 0, 512); err != nil {
			t.Fatal(err)
		}
	}
	hitsMisses := func() (int64, int64) {
		st := svc.Stats().Cache
		return st.Hits, st.Misses
	}

	run() // lead
	run() // hit
	if h, m := hitsMisses(); h != 1 || m != 1 {
		t.Fatalf("warmup: hits=%d misses=%d, want 1/1", h, m)
	}

	if _, err := svc.ApplyMutations(ctx, distwalk.Mutations{AddEdges: []distwalk.EdgeMutation{{U: 0, V: 30}}}); err != nil {
		t.Fatal(err)
	}
	run() // must miss: the old generation's entry is unreachable
	if h, m := hitsMisses(); h != 1 || m != 2 {
		t.Fatalf("after ApplyMutations: hits=%d misses=%d, want 1/2", h, m)
	}
	run() // and hit again under the new generation
	if h, m := hitsMisses(); h != 2 || m != 2 {
		t.Fatalf("re-warm after ApplyMutations: hits=%d misses=%d, want 2/2", h, m)
	}

	if err := svc.InvalidateCache(); err != nil {
		t.Fatal(err)
	}
	run() // identical behavior: miss
	if h, m := hitsMisses(); h != 2 || m != 3 {
		t.Fatalf("after InvalidateCache: hits=%d misses=%d, want 2/3", h, m)
	}
	if svc.Generation() != 3 {
		t.Fatalf("Generation() = %v after one mutation and one invalidation, want 3", svc.Generation())
	}
}

// TestMutationPinnedInFlightNotStored submits a long epoch-pinned request,
// mutates the topology while it is (likely still) in flight, and checks
// both halves of the pinning contract: the request completes without
// error, and its result is never stored — the next identical request
// leads its own execution instead of hitting.
func TestMutationPinnedInFlightNotStored(t *testing.T) {
	ctx := context.Background()
	g := mustTorus(t, 16, 16)
	svc, err := distwalk.NewService(g, 42, distwalk.WithResultCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	done := make(chan error, 1)
	go func() {
		_, err := svc.SingleRandomWalk(ctx, 11, 0, 1<<17)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // give the walk a head start
	if _, err := svc.ApplyMutations(ctx, distwalk.Mutations{AddEdges: []distwalk.EdgeMutation{{U: 0, V: 100}}}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("epoch-pinned in-flight request failed across the mutation: %v", err)
	}
	// Whether or not the mutation actually overlapped the execution, the
	// old-generation result must be unreachable now: same request again
	// must miss.
	if _, err := svc.SingleRandomWalk(ctx, 11, 0, 1<<17); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats().Cache; st.Hits != 0 {
		t.Fatalf("post-mutation repeat hit a stale entry: %+v", st)
	}
}

// TestMutationStaleAbortEvictsQueuedBatch pins the deterministic abort
// path: a WithStaleAbort submission waiting in a pending batch is evicted
// at publish with a typed stale-generation error carrying both ordinals.
func TestMutationStaleAbortEvictsQueuedBatch(t *testing.T) {
	ctx := context.Background()
	g := mustTorus(t, 8, 8)
	// A huge size threshold and an hour-long window: the batch can only
	// leave the queue through the mutation's eviction.
	svc, err := distwalk.NewService(g, 42, distwalk.WithBatching(64, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	h, err := svc.SubmitWalk(ctx, 3, 0, 256, distwalk.WithStaleAbort())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.ApplyMutations(ctx, distwalk.Mutations{AddEdges: []distwalk.EdgeMutation{{U: 0, V: 30}}}); err != nil {
		t.Fatal(err)
	}
	_, err = h.Result()
	if !errors.Is(err, distwalk.ErrStaleGeneration) {
		t.Fatalf("queued abort-mode walk: err = %v, want ErrStaleGeneration", err)
	}
	var sg *distwalk.StaleGenerationError
	if !errors.As(err, &sg) {
		t.Fatalf("err %v does not carry *StaleGenerationError", err)
	}
	if sg.Old != 1 || sg.New != 2 {
		t.Fatalf("StaleGenerationError = %+v, want Old 1 New 2", sg)
	}
	if st := svc.Stats().Mutation; st.StaleAborts == 0 {
		t.Fatalf("MutationStats.StaleAborts = 0 after an eviction: %+v", st)
	}

	// Epoch-pinned members of the same dead epoch are NOT evicted: they
	// stay queued and execute pinned when the window flushes.
	svc2, err := distwalk.NewService(g, 42, distwalk.WithBatching(64, 100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	h2, err := svc2.SubmitWalk(ctx, 3, 0, 256) // default: epoch pinning
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc2.ApplyMutations(ctx, distwalk.Mutations{AddEdges: []distwalk.EdgeMutation{{U: 0, V: 30}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Result(); err != nil {
		t.Fatalf("queued epoch-pinned walk failed across the mutation: %v", err)
	}
}

// TestMutationStaleAbortRetryReexecutes pins the retry contract: a
// stale-aborted request under WithRetry re-admits on the new topology and
// returns exactly what a fresh post-mutation request would — stale
// retries are unsalted.
func TestMutationStaleAbortRetryReexecutes(t *testing.T) {
	ctx := context.Background()
	g := mustTorus(t, 8, 8)
	svc, err := distwalk.NewService(g, 42, distwalk.WithBatching(64, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	h, err := svc.SubmitWalk(ctx, 3, 0, 256, distwalk.WithStaleAbort(), distwalk.WithRetry(2))
	if err != nil {
		t.Fatal(err)
	}
	mut := distwalk.Mutations{AddEdges: []distwalk.EdgeMutation{{U: 0, V: 30}}}
	if _, err := svc.ApplyMutations(ctx, mut); err != nil {
		t.Fatal(err)
	}
	res, err := h.Result()
	if err != nil {
		t.Fatalf("stale-aborted walk did not recover under WithRetry: %v", err)
	}

	// The recovered result is bit-identical to the same request on a
	// service built directly over the mutated graph.
	g2, err := g.ApplyEdits(nil, mut.AddEdges)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := distwalk.NewService(g2, 42)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	want, err := fresh.SingleRandomWalk(ctx, 3, 0, 256)
	if err != nil {
		t.Fatal(err)
	}
	if res.Destination != want.Destination || res.Cost != want.Cost {
		t.Fatalf("recovered walk diverged from fresh post-mutation request:\n  retried: dest=%d cost=%+v\n  fresh:   dest=%d cost=%+v",
			res.Destination, res.Cost, want.Destination, want.Cost)
	}
}

// TestMutationStaleAbortInFlight drives the cancellation path: an
// abort-mode execution already running when the mutation publishes is
// cancelled mid-run with the typed stale error. The walk is sized to
// stay in flight well past the mutation; if this machine nonetheless
// finishes it first, the test retries with a longer walk before giving
// up (the queued-eviction and fast-fail paths are covered
// deterministically elsewhere).
func TestMutationStaleAbortInFlight(t *testing.T) {
	ctx := context.Background()
	g := mustTorus(t, 16, 16)
	for attempt, ell := 0, 1<<17; attempt < 4; attempt, ell = attempt+1, ell*4 {
		svc, err := distwalk.NewService(g, 42)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			_, err := svc.SingleRandomWalk(ctx, 11, 0, ell, distwalk.WithStaleAbort())
			done <- err
		}()
		time.Sleep(20 * time.Millisecond)
		if _, err := svc.ApplyMutations(ctx, distwalk.Mutations{AddEdges: []distwalk.EdgeMutation{{U: 0, V: 100}}}); err != nil {
			svc.Close()
			t.Fatal(err)
		}
		err = <-done
		svc.Close()
		if err == nil {
			continue // walk won the race; try a longer one
		}
		if !errors.Is(err, distwalk.ErrStaleGeneration) {
			t.Fatalf("in-flight abort-mode walk: err = %v, want ErrStaleGeneration", err)
		}
		var sg *distwalk.StaleGenerationError
		if !errors.As(err, &sg) || sg.Old != 1 || sg.New != 2 {
			t.Fatalf("err %v does not carry StaleGenerationError{1,2}", err)
		}
		return
	}
	t.Skip("walk completed before every mutation attempt; cancellation path not exercised on this machine")
}

// testShardIdentityMutate extends the bit-identity contract across a
// mutation: requests before and after the same edit batch must produce
// identical results at every shard count — whichever reshape kind
// (incremental or full) each shard count's worker networks took.
func testShardIdentityMutate(t *testing.T, shards int) {
	ctx := context.Background()
	g := mustTorus(t, 12, 12)
	mut := distwalk.Mutations{
		RemoveEdges: []distwalk.EdgeMutation{{U: 0, V: 1}},
		AddEdges:    []distwalk.EdgeMutation{{U: 0, V: 77, W: 2}, {U: 5, V: 130}},
	}

	digest := func(svc *distwalk.Service) string {
		var b []string
		// Concurrent requests against the current epoch.
		var (
			mu sync.Mutex
			wg sync.WaitGroup
		)
		outs := make(map[uint64]string)
		for key := uint64(1); key <= 4; key++ {
			wg.Add(1)
			go func(key uint64) {
				defer wg.Done()
				res, err := svc.SingleRandomWalk(ctx, key, 0, 1024)
				s := ""
				if err != nil {
					s = "err:" + err.Error()
				} else {
					s = fmt.Sprintf("dest=%d len=%d cost=%+v", res.Destination, res.Length, res.Cost)
				}
				mu.Lock()
				outs[key] = s
				mu.Unlock()
			}(key)
		}
		wg.Wait()
		for key := uint64(1); key <= 4; key++ {
			b = append(b, fmt.Sprintf("key%d{%s}", key, outs[key]))
		}
		return fmt.Sprint(b)
	}

	run := func() string {
		opts := []distwalk.Option{distwalk.WithWorkers(2)}
		if shards > 1 {
			opts = append(opts, distwalk.WithShards(shards))
		}
		svc, err := distwalk.NewService(g, 42, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		pre := digest(svc)
		if _, err := svc.ApplyMutations(ctx, mut); err != nil {
			t.Fatal(err)
		}
		post := digest(svc)
		return "pre" + pre + "|post" + post
	}

	got := run()

	// Reference: an unsharded single-worker service over the same graphs.
	ref, err := distwalk.NewService(g, 42)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	pre := digest(ref)
	if _, err := ref.ApplyMutations(ctx, mut); err != nil {
		t.Fatal(err)
	}
	want := "pre" + pre + "|post" + digest(ref)
	if got != want {
		t.Fatalf("mutate-between-requests diverged at %d shards:\n  got:  %s\n  want: %s", shards, got, want)
	}
}

func TestShardIdentityMutate1(t *testing.T) { testShardIdentityMutate(t, 1) }
func TestShardIdentityMutate2(t *testing.T) { testShardIdentityMutate(t, 2) }
func TestShardIdentityMutate4(t *testing.T) { testShardIdentityMutate(t, 4) }
func TestShardIdentityMutate8(t *testing.T) { testShardIdentityMutate(t, 8) }

func TestOptionScopeRejected(t *testing.T) {
	ctx := context.Background()
	g := mustTorus(t, 6, 6)
	svc, err := distwalk.NewService(g, 1, distwalk.WithResultCache(1<<16))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	_, err = svc.SingleRandomWalk(ctx, 1, 0, 64, distwalk.WithWorkers(4))
	if !errors.Is(err, distwalk.ErrOptionScope) {
		t.Fatalf("per-request WithWorkers: err = %v, want ErrOptionScope", err)
	}
	var oe *distwalk.OptionScopeError
	if !errors.As(err, &oe) || oe.Option != "WithWorkers" {
		t.Fatalf("err %v does not name the offending option (got %+v)", err, oe)
	}
	if _, err := svc.SubmitWalk(ctx, 2, 0, 64, distwalk.WithShards(2)); !errors.Is(err, distwalk.ErrOptionScope) {
		t.Fatalf("per-request WithShards on SubmitWalk: err = %v, want ErrOptionScope", err)
	}
	if _, err := svc.RandomSpanningTree(ctx, 3, 0, distwalk.WithResultCache(1)); !errors.Is(err, distwalk.ErrOptionScope) {
		t.Fatalf("per-request WithResultCache: err = %v, want ErrOptionScope", err)
	}
	// Per-request options still work, construction still honors both.
	if _, err := svc.SingleRandomWalk(ctx, 4, 0, 64, distwalk.WithMaxRounds(1<<20), distwalk.WithEpochPinning()); err != nil {
		t.Fatal(err)
	}
}

// TestMutationChaos is the mutation stress test the chaos CI job runs:
// concurrent pinned and abort-mode requests race a stream of mutations;
// every failure must be a typed stale abort, and the surviving topology
// must equal the same edit sequence applied cold.
func TestMutationChaos(t *testing.T) {
	ctx := context.Background()
	g := mustTorus(t, 10, 10)
	svc, err := distwalk.NewService(g, 42, distwalk.WithWorkers(4), distwalk.WithResultCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// The mutation stream toggles a diagonal chord on and off and
	// keeps a weighted edge moving; every batch is valid by construction.
	batches := make([]distwalk.Mutations, 0, 12)
	for i := 0; i < 12; i++ {
		v := distwalk.NodeID(30 + i)
		if i%2 == 0 {
			batches = append(batches, distwalk.Mutations{AddEdges: []distwalk.EdgeMutation{{U: 0, V: v}}})
		} else {
			batches = append(batches, distwalk.Mutations{RemoveEdges: []distwalk.EdgeMutation{{U: 0, V: v - 1}}})
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var failures []string
	var mu sync.Mutex
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var opts []distwalk.Option
			if w%2 == 1 {
				opts = append(opts, distwalk.WithStaleAbort(), distwalk.WithRetry(3))
			}
			for key := uint64(w * 100); ; key++ {
				select {
				case <-stop:
					return
				default:
				}
				_, err := svc.SingleRandomWalk(ctx, key, 0, 4096, opts...)
				if err != nil && !errors.Is(err, distwalk.ErrStaleGeneration) {
					mu.Lock()
					failures = append(failures, fmt.Sprintf("worker %d key %d: %v", w, key, err))
					mu.Unlock()
					return
				}
			}
		}(w)
	}
	for _, m := range batches {
		time.Sleep(5 * time.Millisecond)
		if _, err := svc.ApplyMutations(ctx, m); err != nil {
			t.Fatalf("mutation under load: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	if len(failures) > 0 {
		t.Fatalf("requests failed with non-stale errors under mutation load:\n%v", failures)
	}

	// The surviving topology is exactly the edit sequence applied cold,
	// and a request on it matches a fresh service bit for bit.
	cold := g
	for _, m := range batches {
		cold, err = cold.ApplyEdits(m.RemoveEdges, m.AddEdges)
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := svc.SingleRandomWalk(ctx, 9999, 0, 2048)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := distwalk.NewService(cold, 42)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	want, err := fresh.SingleRandomWalk(ctx, 9999, 0, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if res.Destination != want.Destination || res.Cost != want.Cost {
		t.Fatalf("post-chaos topology diverged from cold replay:\n  live:  dest=%d cost=%+v\n  fresh: dest=%d cost=%+v",
			res.Destination, res.Cost, want.Destination, want.Cost)
	}
	if gen := svc.Generation(); gen != distwalk.Generation(1+len(batches)) {
		t.Fatalf("Generation() = %v after %d mutations, want %d", gen, len(batches), 1+len(batches))
	}
}

// TestClusterMutationRehandshake drives a mutation through a real
// 2-process cluster: after ApplyMutations rotates the supervisors'
// handshake, the next request re-dials the engines, the engines re-pin
// to the new graph digest and higher generation (instead of rejecting
// the unknown digest forever), and the result is bit-identical to an
// in-process service over the mutated graph. No WithClusterFallback is
// installed, so a successful request proves the remote path worked.
func TestClusterMutationRehandshake(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster re-handshake over TCP skipped in -short mode")
	}
	ctx := context.Background()
	g := mustTorus(t, 12, 12)
	addrs := startEngines(t, 2)
	clu, err := distwalk.NewService(g, 42, distwalk.WithWorkers(2), distwalk.WithCluster(addrs...))
	if err != nil {
		t.Fatal(err)
	}
	defer clu.Close()

	if _, err := clu.SingleRandomWalk(ctx, 1, 0, 1024); err != nil {
		t.Fatal(err)
	}
	preRuns := int64(0)
	for _, e := range clu.Stats().Cluster.Engines {
		preRuns += e.Runs
	}
	if preRuns == 0 {
		t.Fatal("pre-mutation request recorded no engine runs")
	}

	mut := distwalk.Mutations{
		RemoveEdges: []distwalk.EdgeMutation{{U: 0, V: 1}},
		AddEdges:    []distwalk.EdgeMutation{{U: 0, V: 77, W: 2}},
	}
	if _, err := clu.ApplyMutations(ctx, mut); err != nil {
		t.Fatal(err)
	}
	res, err := clu.SingleRandomWalk(ctx, 2, 0, 1024)
	if err != nil {
		t.Fatalf("post-mutation cluster request failed (engines should re-pin, not reject): %v", err)
	}

	// The request genuinely ran on the re-handshaken engines.
	st := clu.Stats()
	postRuns := int64(0)
	for _, e := range st.Cluster.Engines {
		postRuns += e.Runs
	}
	if postRuns <= preRuns {
		t.Fatalf("post-mutation request carried no engine traffic: runs %d -> %d", preRuns, postRuns)
	}
	if st.Cluster.Failovers != 0 {
		t.Fatalf("post-mutation request failed over in-process: %+v", st.Cluster)
	}
	for i, h := range st.Cluster.Health {
		if h != "healthy" {
			t.Errorf("engine %d health = %q after re-handshake, want healthy", i, h)
		}
	}

	// Bit-identity with an in-process service over the mutated graph.
	g2, err := g.ApplyEdits(mut.RemoveEdges, mut.AddEdges)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := distwalk.NewService(g2, 42, distwalk.WithWorkers(2), distwalk.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	want, err := fresh.SingleRandomWalk(ctx, 2, 0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if res.Destination != want.Destination || res.Cost != want.Cost {
		t.Fatalf("cluster post-mutation walk diverged from in-process:\n  cluster: dest=%d cost=%+v\n  local:   dest=%d cost=%+v",
			res.Destination, res.Cost, want.Destination, want.Cost)
	}
}
