package distwalk_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distwalk"
)

// TestStatsHandler round-trips a live ServiceStats snapshot — cache
// counters included — through the debug HTTP handler.
func TestStatsHandler(t *testing.T) {
	ctx := context.Background()
	g, err := distwalk.Torus(9, 9)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := distwalk.NewService(g, 42, distwalk.WithResultCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	// One miss, one hit, so every CacheStats field is exercised.
	if _, err := svc.SingleRandomWalk(ctx, 1, 0, 400); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.SingleRandomWalk(ctx, 1, 0, 400); err != nil {
		t.Fatal(err)
	}
	want := svc.Stats()

	rec := httptest.NewRecorder()
	svc.StatsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/distwalk", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var got distwalk.ServiceStats
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("decoding body: %v", err)
	}
	if got.Cache != want.Cache {
		t.Fatalf("decoded cache stats %+v, want %+v", got.Cache, want.Cache)
	}
	if got.Cache.Hits != 1 || got.Cache.Misses != 1 || got.Cache.BytesUsed <= 0 {
		t.Fatalf("cache stats did not survive the round trip: %+v", got.Cache)
	}
	if got.Retry != want.Retry {
		t.Fatalf("decoded retry stats %+v, want %+v", got.Retry, want.Retry)
	}
}

// TestPublishExpvarConcurrent pins the check-then-publish fix: n
// concurrent calls on one name must yield exactly one success and n−1
// duplicate errors — never the panic the unguarded Get/Publish pair
// allowed.
func TestPublishExpvarConcurrent(t *testing.T) {
	g, err := distwalk.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := distwalk.NewService(g, 1, distwalk.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	// expvar names are process-global and cannot be unpublished; make the
	// name unique per run so -count=2 does not collide with itself.
	name := fmt.Sprintf("distwalk-test-%s-%d", t.Name(), time.Now().UnixNano())
	const n = 16
	var ok, dup atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := svc.PublishExpvar(name); err == nil {
				ok.Add(1)
			} else {
				dup.Add(1)
			}
		}()
	}
	wg.Wait()
	if ok.Load() != 1 || dup.Load() != n-1 {
		t.Fatalf("%d successes and %d duplicate errors, want 1 and %d", ok.Load(), dup.Load(), n-1)
	}
	// A later call still reports the collision instead of panicking.
	if err := svc.PublishExpvar(name); err == nil {
		t.Fatal("re-publishing an existing name succeeded")
	}
}
